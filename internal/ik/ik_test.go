package ik

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/climate"
)

func TestCatalogueValid(t *testing.T) {
	cat := Catalogue()
	if len(cat) < 10 {
		t.Fatalf("catalogue too small: %d", len(cat))
	}
	slugs := make(map[string]bool)
	types := make(map[string]bool)
	for _, ind := range cat {
		if err := ind.Validate(); err != nil {
			t.Errorf("indicator %s: %v", ind.Slug, err)
		}
		if slugs[ind.Slug] {
			t.Errorf("duplicate slug %s", ind.Slug)
		}
		slugs[ind.Slug] = true
		if !strings.HasPrefix(ind.EventType(), "ik-") {
			t.Errorf("event type %q should be ik-prefixed", ind.EventType())
		}
		types[ind.EventType()] = true
	}
	// The paper's two named examples must exist.
	if !slugs["sifennefene-worms"] || !slugs["mutiga-flowering"] {
		t.Error("paper's flagship indicators missing")
	}
}

func TestIndicatorValidate(t *testing.T) {
	good := Catalogue()[0]
	cases := []func(*Indicator){
		func(i *Indicator) { i.Slug = "" },
		func(i *Indicator) { i.Class = "" },
		func(i *Indicator) { i.Polarity = 0 },
		func(i *Indicator) { i.LeadTimeDays = 0 },
		func(i *Indicator) { i.BaseReliability = 0 },
		func(i *Indicator) { i.BaseReliability = 1.2 },
	}
	for n, mutate := range cases {
		ind := good
		mutate(&ind)
		if err := ind.Validate(); err == nil {
			t.Errorf("case %d should fail", n)
		}
	}
}

func TestDryIndicatorsSorted(t *testing.T) {
	dry := DryIndicators()
	if len(dry) == 0 {
		t.Fatal("no dry indicators")
	}
	for i := 1; i < len(dry); i++ {
		if dry[i-1].LeadTimeDays < dry[i].LeadTimeDays {
			t.Fatal("dry indicators not sorted by lead time desc")
		}
		if dry[i].Polarity != PolarityDry {
			t.Fatal("wet indicator leaked into dry set")
		}
	}
}

func TestPolarityString(t *testing.T) {
	if PolarityDry.String() != "dry" || PolarityWet.String() != "wet" {
		t.Error("polarity names wrong")
	}
	if !strings.Contains(Polarity(9).String(), "9") {
		t.Error("unknown polarity should render numerically")
	}
}

func TestInformantTracker(t *testing.T) {
	tr := NewInformantTracker()
	prior := tr.Reliability("new-person")
	if math.Abs(prior-0.6) > 1e-9 {
		t.Errorf("prior = %v, want 0.6", prior)
	}
	for i := 0; i < 8; i++ {
		tr.Observe("sharp", true)
	}
	for i := 0; i < 8; i++ {
		tr.Observe("noisy", false)
	}
	tr.Observe("sharp", false)
	tr.Observe("noisy", true)
	if r := tr.Reliability("sharp"); r < 0.75 {
		t.Errorf("sharp informant reliability %v too low", r)
	}
	if r := tr.Reliability("noisy"); r > 0.4 {
		t.Errorf("noisy informant reliability %v too high", r)
	}
	h, m := tr.Count("sharp")
	if h != 8 || m != 1 {
		t.Errorf("counts = %d/%d", h, m)
	}
	names := tr.Informants()
	if len(names) != 2 || names[0] != "sharp" {
		t.Errorf("ranking = %v", names)
	}
}

func TestInformantPool(t *testing.T) {
	p, err := NewInformantPool(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Names) != 10 {
		t.Fatalf("pool = %d", len(p.Names))
	}
	for _, n := range p.Names {
		s := p.Skill[n]
		if s < 0.45 || s > 0.85 {
			t.Errorf("skill %v out of range", s)
		}
	}
	p2, _ := NewInformantPool(10, 5)
	for _, n := range p.Names {
		if p.Skill[n] != p2.Skill[n] {
			t.Fatal("pool not reproducible")
		}
	}
	if _, err := NewInformantPool(0, 1); err == nil {
		t.Error("empty pool should error")
	}
}

func simSeries(t *testing.T, years int, seed int64) ([]climate.Day, *climate.Truth) {
	t.Helper()
	g, err := climate.NewGenerator(climate.DefaultParams(seed))
	if err != nil {
		t.Fatal(err)
	}
	days := g.GenerateYears(years)
	truth, err := climate.Label(days, 90)
	if err != nil {
		t.Fatal(err)
	}
	return days, truth
}

func TestGenerateReports(t *testing.T) {
	days, truth := simSeries(t, 6, 17)
	pool, _ := NewInformantPool(8, 3)
	reports, err := GenerateReports(GeneratorConfig{Pool: pool, District: "xhariep", Seed: 9}, days, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports generated over 6 years")
	}
	cat := CatalogueBySlug()
	for _, r := range reports {
		if err := r.Validate(cat); err != nil {
			t.Fatalf("generated report invalid: %v", err)
		}
		if r.District != "xhariep" {
			t.Fatal("district not propagated")
		}
	}
}

func TestGenerateReportsValidation(t *testing.T) {
	days, truth := simSeries(t, 2, 1)
	if _, err := GenerateReports(GeneratorConfig{}, days, truth); err == nil {
		t.Error("missing pool should error")
	}
	pool, _ := NewInformantPool(3, 1)
	if _, err := GenerateReports(GeneratorConfig{Pool: pool}, nil, truth); err == nil {
		t.Error("empty series should error")
	}
}

func TestGeneratedReportsCarrySignal(t *testing.T) {
	// Dry-indicator reports must be denser ahead of droughts than in
	// normal times — otherwise the generator produces pure noise and the
	// fusion experiment is meaningless.
	days, truth := simSeries(t, 12, 23)
	pool, _ := NewInformantPool(10, 7)
	reports, err := GenerateReports(GeneratorConfig{Pool: pool, District: "d", ReportRate: 0.05, Seed: 11}, days, truth)
	if err != nil {
		t.Fatal(err)
	}
	cat := CatalogueBySlug()
	indexOf := make(map[int64]int)
	for i, d := range days {
		indexOf[d.Date.Unix()] = i
	}
	hits, total := 0, 0
	for _, r := range reports {
		ind := cat[r.Indicator]
		if ind.Polarity != PolarityDry {
			continue
		}
		di := indexOf[r.Time.Unix()]
		ahead := di + ind.LeadTimeDays
		if ahead >= len(days) {
			continue
		}
		total++
		if truth.InDrought[ahead] {
			hits++
		}
	}
	if total < 20 {
		t.Skipf("too few verifiable dry reports (%d) for this seed", total)
	}
	precision := float64(hits) / float64(total)
	base := truth.DroughtFraction()
	if precision <= base {
		t.Errorf("dry-report precision %.2f not above base rate %.2f — no signal", precision, base)
	}
}

func TestScoreReportsUpdatesTracker(t *testing.T) {
	days, truth := simSeries(t, 6, 29)
	pool, _ := NewInformantPool(6, 13)
	reports, err := GenerateReports(GeneratorConfig{Pool: pool, District: "d", ReportRate: 0.05, Seed: 31}, days, truth)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewInformantTracker()
	scored, err := ScoreReports(reports, days, truth, tr)
	if err != nil {
		t.Fatal(err)
	}
	if scored == 0 {
		t.Fatal("nothing scored")
	}
	if len(tr.Informants()) == 0 {
		t.Fatal("tracker empty after scoring")
	}
}

func TestConsensusStrength(t *testing.T) {
	tr := NewInformantTracker()
	if got := ConsensusStrength(nil, tr); got != 0 {
		t.Errorf("empty consensus = %v", got)
	}
	now := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	one := []Report{{Informant: "a", Indicator: "mutiga-flowering", Time: now, Strength: 1}}
	three := append(one,
		Report{Informant: "b", Indicator: "mutiga-flowering", Time: now, Strength: 1},
		Report{Informant: "c", Indicator: "mutiga-flowering", Time: now, Strength: 1},
	)
	cOne := ConsensusStrength(one, tr)
	cThree := ConsensusStrength(three, tr)
	if cOne >= cThree {
		t.Errorf("one-voice consensus %v should be weaker than three-voice %v", cOne, cThree)
	}
	if cThree > 1 || cOne < 0 {
		t.Error("consensus out of range")
	}
}

func TestCompileRules(t *testing.T) {
	rules, err := CompileRules(Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	// One rule per indicator + 2 consensus rules.
	if len(rules) != len(Catalogue())+2 {
		t.Fatalf("rules = %d, want %d", len(rules), len(Catalogue())+2)
	}
	for _, r := range rules {
		if r.Source != "ik" {
			t.Errorf("rule %s source = %q", r.Name, r.Source)
		}
	}
	if _, err := CompileRules(nil); err == nil {
		t.Error("empty catalogue should error")
	}
	bad := Catalogue()
	bad[0].BaseReliability = 0
	if _, err := CompileRules(bad); err == nil {
		t.Error("invalid indicator should fail compilation")
	}
}

func TestCompiledRulesFireOnCorroboratedSigns(t *testing.T) {
	rules, err := CompileRules(Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cep.NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC)
	evs := []cep.Event{
		{Type: "ik-mutiga-flowering", Time: start, Value: 0.8, Confidence: 0.7},
		{Type: "ik-mutiga-flowering", Time: start.AddDate(0, 0, 3), Value: 0.9, Confidence: 0.7},
		{Type: "ik-sifennefene-worms", Time: start.AddDate(0, 0, 5), Value: 0.8, Confidence: 0.7},
		{Type: "ik-sifennefene-worms", Time: start.AddDate(0, 0, 8), Value: 0.7, Confidence: 0.7},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]int)
	for _, e := range emitted {
		types[e.Type]++
	}
	if types["IKDrySignal"] < 2 {
		t.Errorf("expected two corroborated dry signals: %v", types)
	}
	if types["IKDroughtWarning"] == 0 {
		t.Errorf("expected consensus warning: %v", types)
	}
}

func TestEventsFromReports(t *testing.T) {
	cat := CatalogueBySlug()
	tr := NewInformantTracker()
	tr.Observe("elder", true)
	tr.Observe("elder", true)
	now := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	reports := []Report{
		{Informant: "elder", Indicator: "mutiga-flowering", District: "xhariep", Time: now, Strength: 0.9},
		{Informant: "new", Indicator: "moon-halo", District: "xhariep", Time: now.AddDate(0, 0, -1), Strength: 0.5},
	}
	evs, err := EventsFromReports(reports, cat, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	// Sorted by time.
	if evs[0].Time.After(evs[1].Time) {
		t.Error("events not sorted")
	}
	for _, e := range evs {
		if e.Key != "xhariep" {
			t.Error("district not mapped to key")
		}
	}
	// Tracked informant confidence must exceed the new one's prior.
	var elderConf, newConf float64
	for _, e := range evs {
		switch e.Attrs["informant"] {
		case "elder":
			elderConf = e.Confidence
		case "new":
			newConf = e.Confidence
		}
	}
	if elderConf <= newConf {
		t.Errorf("elder conf %v should exceed prior %v", elderConf, newConf)
	}
	// Invalid reports are rejected.
	if _, err := EventsFromReports([]Report{{Informant: "x", Indicator: "ghost", Time: now, Strength: 1}}, cat, tr); err == nil {
		t.Error("unknown indicator should fail")
	}
}

func TestParseQuestionnaire(t *testing.T) {
	cat := CatalogueBySlug()
	src := `
# field collection, Xhariep workshop
informant: mme-dikeledi; sign: mutiga-flowering; district: xhariep; date: 2015-09-01; strength: 0.8
informant: ntate-thabo; indicator: sifennefene-worms; district: xhariep; date: 2015-09-03
`
	reports, err := ParseQuestionnaire(strings.NewReader(src), cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Informant != "mme-dikeledi" || reports[0].Strength != 0.8 {
		t.Errorf("report 0 = %+v", reports[0])
	}
	if reports[1].Strength != 0.7 {
		t.Errorf("default strength = %v", reports[1].Strength)
	}
	if !reports[0].Time.Equal(time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("date = %v", reports[0].Time)
	}
}

func TestParseQuestionnaireErrors(t *testing.T) {
	cat := CatalogueBySlug()
	cases := []struct {
		name string
		src  string
	}{
		{"bad date", "informant: a; sign: moon-halo; date: 2015-99-01"},
		{"unknown sign", "informant: a; sign: unicorns; date: 2015-09-01"},
		{"unknown field", "informant: a; sign: moon-halo; date: 2015-09-01; moonphase: full"},
		{"no colon", "informant a"},
		{"bad strength", "informant: a; sign: moon-halo; date: 2015-09-01; strength: high"},
		{"missing informant", "sign: moon-halo; date: 2015-09-01"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseQuestionnaire(strings.NewReader(c.src), cat); err == nil {
				t.Errorf("expected error for %q", c.src)
			}
		})
	}
}
