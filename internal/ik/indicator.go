package ik

import (
	"fmt"
	"sort"

	"repro/internal/ontology/drought"
	"repro/internal/rdf"
)

// Polarity says what an indicator forecasts.
type Polarity int

// Indicator polarities.
const (
	// PolarityDry: the sign points to drier conditions / drought.
	PolarityDry Polarity = iota + 1
	// PolarityWet: the sign points to rain / wet spells.
	PolarityWet
)

// String names the polarity.
func (p Polarity) String() string {
	switch p {
	case PolarityDry:
		return "dry"
	case PolarityWet:
		return "wet"
	default:
		return fmt.Sprintf("Polarity(%d)", int(p))
	}
}

// Indicator is one catalogued indigenous-knowledge sign.
type Indicator struct {
	// Slug is the stable identifier ("sifennefene-worms").
	Slug string
	// Class is the ontology class IRI for the sign.
	Class rdf.IRI
	// Label is the English display label.
	Label string
	// Polarity is the forecast direction.
	Polarity Polarity
	// LeadTimeDays is the typical advance notice the sign gives.
	LeadTimeDays int
	// BaseReliability is the population-level prior reliability in [0,1]
	// before informant track records are taken into account.
	BaseReliability float64
	// Description is free documentation text.
	Description string
}

// EventType is the CEP event type name for reports of this indicator.
func (i Indicator) EventType() string { return "ik-" + i.Slug }

// Validate checks catalogue invariants.
func (i Indicator) Validate() error {
	switch {
	case i.Slug == "":
		return fmt.Errorf("ik: indicator without slug")
	case i.Class == "":
		return fmt.Errorf("ik: indicator %s without ontology class", i.Slug)
	case i.Polarity != PolarityDry && i.Polarity != PolarityWet:
		return fmt.Errorf("ik: indicator %s with bad polarity", i.Slug)
	case i.LeadTimeDays <= 0:
		return fmt.Errorf("ik: indicator %s needs positive lead time", i.Slug)
	case i.BaseReliability <= 0 || i.BaseReliability > 1:
		return fmt.Errorf("ik: indicator %s reliability %v outside (0,1]", i.Slug, i.BaseReliability)
	}
	return nil
}

// Catalogue returns the built-in indicator set, aligned one-to-one with
// the IK classes of the drought ontology. Reliabilities are deliberately
// heterogeneous: some signs are strong, some weak — the fusion experiment
// depends on that spread.
func Catalogue() []Indicator {
	return []Indicator{
		{
			Slug: "sifennefene-worms", Class: drought.SifennefeneWormAbundance,
			Label: "sifennefene worm abundance", Polarity: PolarityDry,
			LeadTimeDays: 60, BaseReliability: 0.74,
			Description: "Abundance of sifennefene worms signals a dry season ahead (Masinde & Bagula 2011).",
		},
		{
			Slug: "mutiga-flowering", Class: drought.MutigaTreeFlowering,
			Label: "mutiga tree flowering", Polarity: PolarityDry,
			LeadTimeDays: 75, BaseReliability: 0.71,
			Description: "Heavy flowering of the mutiga tree indicates drier conditions to come.",
		},
		{
			Slug: "acacia-early-bloom", Class: drought.AcaciaEarlyBloom,
			Label: "acacia early bloom", Polarity: PolarityDry,
			LeadTimeDays: 55, BaseReliability: 0.62,
		},
		{
			Slug: "aloe-profuse-flowering", Class: drought.AloeProfuseFlowering,
			Label: "aloe profuse flowering", Polarity: PolarityDry,
			LeadTimeDays: 50, BaseReliability: 0.66,
		},
		{
			Slug: "stork-early-departure", Class: drought.StorkEarlyDeparture,
			Label: "stork early departure", Polarity: PolarityDry,
			LeadTimeDays: 45, BaseReliability: 0.58,
		},
		{
			Slug: "swallow-low-flight", Class: drought.SwallowLowFlight,
			Label: "swallows flying low", Polarity: PolarityWet,
			LeadTimeDays: 3, BaseReliability: 0.64,
		},
		{
			Slug: "east-wind-persistence", Class: drought.EastWindPersistence,
			Label: "persistent east wind", Polarity: PolarityDry,
			LeadTimeDays: 30, BaseReliability: 0.55,
		},
		{
			Slug: "haze-horizon", Class: drought.HazeHorizon,
			Label: "haze on the horizon", Polarity: PolarityDry,
			LeadTimeDays: 20, BaseReliability: 0.52,
		},
		{
			Slug: "moon-halo", Class: drought.MoonHalo,
			Label: "halo around the moon", Polarity: PolarityWet,
			LeadTimeDays: 5, BaseReliability: 0.57,
		},
		{
			Slug: "selemela-dimness", Class: drought.StarClusterDimness,
			Label: "dim Selemela star cluster", Polarity: PolarityDry,
			LeadTimeDays: 90, BaseReliability: 0.6,
		},
		{
			Slug: "cattle-restlessness", Class: drought.CattleRestlessness,
			Label: "cattle restlessness", Polarity: PolarityDry,
			LeadTimeDays: 10, BaseReliability: 0.5,
		},
		{
			Slug: "anthill-activity", Class: drought.AntHillActivity,
			Label: "raised ant-hill activity", Polarity: PolarityWet,
			LeadTimeDays: 7, BaseReliability: 0.56,
		},
	}
}

// CatalogueBySlug indexes the catalogue.
func CatalogueBySlug() map[string]Indicator {
	out := make(map[string]Indicator)
	for _, ind := range Catalogue() {
		out[ind.Slug] = ind
	}
	return out
}

// DryIndicators returns the drought-pointing subset, sorted by lead time
// descending (longest notice first).
func DryIndicators() []Indicator {
	var out []Indicator
	for _, ind := range Catalogue() {
		if ind.Polarity == PolarityDry {
			out = append(out, ind)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LeadTimeDays > out[j].LeadTimeDays })
	return out
}
