package ik

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cep"
)

// CompileRules derives the CEP rule set from the indicator catalogue —
// the paper's "set of syntactic derivation rules from indigenous
// knowledge". Three layers of rules are produced:
//
//  1. per-indicator corroboration: ≥2 reports of the same sign within its
//     attention window emit an IKDrySignal / IKWetSignal with the
//     indicator's reliability as confidence;
//  2. cross-indicator agreement: ≥2 distinct dry signals within 30 days
//     emit IKDroughtWarning (severity watch);
//  3. conflict damping: a wet signal within the same window suppresses
//     nothing by itself, but the fusion layer reads both streams — the
//     rule set stays monotone, which keeps the engine's semantics simple.
func CompileRules(catalogue []Indicator) ([]cep.Rule, error) {
	if len(catalogue) == 0 {
		return nil, fmt.Errorf("ik: empty catalogue")
	}
	var b strings.Builder
	sorted := make([]Indicator, len(catalogue))
	copy(sorted, catalogue)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Slug < sorted[j].Slug })
	for _, ind := range sorted {
		if err := ind.Validate(); err != nil {
			return nil, err
		}
		emit := "IKDrySignal"
		if ind.Polarity == PolarityWet {
			emit = "IKWetSignal"
		}
		// Attention window scales with lead time, floored at two weeks.
		window := ind.LeadTimeDays / 2
		if window < 14 {
			window = 14
		}
		fmt.Fprintf(&b, `
RULE ik-%s
WHEN COUNT(%s) >= 2 WITHIN %dd
COOLDOWN %dd
EMIT %s CONFIDENCE %.2f SOURCE ik
`, ind.Slug, ind.EventType(), window, window/2, emit, ind.BaseReliability)
	}
	// Cross-indicator agreement.
	b.WriteString(`
RULE ik-dry-consensus
WHEN COUNT(IKDrySignal) >= 2 WITHIN 30d
COOLDOWN 21d
EMIT IKDroughtWarning SEVERITY watch CONFIDENCE 0.8 SOURCE ik

RULE ik-strong-consensus
WHEN COUNT(IKDrySignal) >= 3 WITHIN 45d AND COUNT(IKWetSignal) <= 0 WITHIN 30d
COOLDOWN 30d
EMIT IKDroughtWarning SEVERITY warning CONFIDENCE 0.85 SOURCE ik
`)
	return cep.ParseRules(b.String())
}

// ReportEvent pairs a report with the CEP event derived from it, so the
// association survives time-sorting. Consumers that publish the report
// alongside its event must use the pair, not parallel slices.
type ReportEvent struct {
	Report Report
	Event  cep.Event
}

// PairedEventsFromReports converts reports to CEP events (confidence =
// the tracker's posterior for the informant, strength as the value),
// sorted by event time with each report carried along its event.
func PairedEventsFromReports(reports []Report, catalogue map[string]Indicator, tracker *InformantTracker) ([]ReportEvent, error) {
	out := make([]ReportEvent, 0, len(reports))
	for _, r := range reports {
		if err := r.Validate(catalogue); err != nil {
			return nil, err
		}
		conf := 0.6
		if tracker != nil {
			conf = tracker.Reliability(r.Informant)
		}
		ind := catalogue[r.Indicator]
		out = append(out, ReportEvent{
			Report: r,
			Event: cep.Event{
				Type:       ind.EventType(),
				Time:       r.Time,
				Value:      r.Strength,
				Confidence: conf,
				Key:        r.District,
				Attrs:      map[string]string{"informant": r.Informant},
			},
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return cep.LessEvents(out[i].Event, out[j].Event)
	})
	return out, nil
}

// EventsFromReports converts reports to time-sorted CEP events. When the
// caller needs to know which report produced which event, use
// PairedEventsFromReports instead: the sort here reorders events
// relative to the input slice.
func EventsFromReports(reports []Report, catalogue map[string]Indicator, tracker *InformantTracker) ([]cep.Event, error) {
	paired, err := PairedEventsFromReports(reports, catalogue, tracker)
	if err != nil {
		return nil, err
	}
	out := make([]cep.Event, len(paired))
	for i, p := range paired {
		out[i] = p.Event
	}
	return out, nil
}
