package ik

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseQuestionnaire reads IK reports in the field-collection text format
// used by the project's questionnaires (§5: "gathering the indigenous
// knowledge of the local people about drought, through the use of
// questionnaire"). One record per line, semicolon-separated key:value
// pairs; '#' starts a comment:
//
//	informant: mme-dikeledi; sign: mutiga-flowering; district: xhariep; date: 2015-09-01; strength: 0.8
//
// Unknown keys are rejected so that field-entry typos surface early.
func ParseQuestionnaire(r io.Reader, catalogue map[string]Indicator) ([]Report, error) {
	sc := bufio.NewScanner(r)
	var out []Report
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rep, err := parseQuestionnaireLine(line)
		if err != nil {
			return nil, fmt.Errorf("ik: questionnaire line %d: %w", lineNo, err)
		}
		if err := rep.Validate(catalogue); err != nil {
			return nil, fmt.Errorf("ik: questionnaire line %d: %w", lineNo, err)
		}
		out = append(out, rep)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ik: reading questionnaire: %w", err)
	}
	return out, nil
}

func parseQuestionnaireLine(line string) (Report, error) {
	rep := Report{Strength: 0.7} // default strength for unscored entries
	for _, field := range strings.Split(line, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, found := strings.Cut(field, ":")
		if !found {
			return rep, fmt.Errorf("field %q is not key: value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		switch key {
		case "informant":
			rep.Informant = value
		case "sign", "indicator":
			rep.Indicator = value
		case "district":
			rep.District = value
		case "date":
			t, err := time.Parse("2006-01-02", value)
			if err != nil {
				return rep, fmt.Errorf("bad date %q", value)
			}
			rep.Time = t.UTC()
		case "strength":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return rep, fmt.Errorf("bad strength %q", value)
			}
			rep.Strength = f
		default:
			return rep, fmt.Errorf("unknown field %q", key)
		}
	}
	return rep, nil
}
