// Package ik implements the indigenous-knowledge substrate of the
// middleware: the indicator catalogue (sifennefene worms, mutiga tree
// phenology and the other signs the paper's citations document),
// informant reports with per-informant reliability tracking,
// questionnaire ingestion (the paper gathers IK "through the use of
// questionnaire, workshop and interactive sessions"), a synthetic
// report generator conditioned on the simulated climate, and
// compilation of indicators into CEP rules — the "set of rules derived
// from IK of the local people on drought".
//
// PairedEventsFromReports is the bridge into the middleware's batched
// ingest: it time-sorts report-derived CEP events while keeping each
// report attached to its own event, so payload publication and graph
// materialization stay aligned after the sort.
package ik
