package ik

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Report is one IK observation: an informant saw a sign at a place and
// time.
type Report struct {
	// Informant is the reporting knowledge holder's ID.
	Informant string
	// Indicator is the catalogued sign's slug.
	Indicator string
	// District is where the sign was observed.
	District string
	// Time is when it was observed.
	Time time.Time
	// Strength in (0,1]: how pronounced the sign was.
	Strength float64
}

// Validate checks report well-formedness against a catalogue.
func (r Report) Validate(catalogue map[string]Indicator) error {
	switch {
	case r.Informant == "":
		return fmt.Errorf("ik: report without informant")
	case r.Time.IsZero():
		return fmt.Errorf("ik: report without time")
	case r.Strength <= 0 || r.Strength > 1:
		return fmt.Errorf("ik: report strength %v outside (0,1]", r.Strength)
	}
	if _, ok := catalogue[r.Indicator]; !ok {
		return fmt.Errorf("ik: report references unknown indicator %q", r.Indicator)
	}
	return nil
}

// InformantTracker maintains per-informant reliability as a beta-binomial
// posterior: reliability = (α + hits) / (α + β + hits + misses). New
// informants start at the prior α/(α+β). Safe for concurrent use.
type InformantTracker struct {
	// PriorAlpha / PriorBeta shape the prior (defaults 3/2 → 0.6).
	PriorAlpha, PriorBeta float64

	mu      sync.RWMutex
	records map[string]*informantRecord
}

type informantRecord struct {
	hits, misses int
}

// NewInformantTracker returns a tracker with the default prior.
func NewInformantTracker() *InformantTracker {
	return &InformantTracker{PriorAlpha: 3, PriorBeta: 2, records: make(map[string]*informantRecord)}
}

// Observe records one verified outcome for an informant's report: hit
// when the forecast implied by the sign verified, miss otherwise.
func (t *InformantTracker) Observe(informant string, hit bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.records[informant]
	if !ok {
		rec = &informantRecord{}
		t.records[informant] = rec
	}
	if hit {
		rec.hits++
	} else {
		rec.misses++
	}
}

// Reliability returns the posterior mean reliability for an informant.
func (t *InformantTracker) Reliability(informant string) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rec := t.records[informant]
	a, b := t.PriorAlpha, t.PriorBeta
	if rec != nil {
		a += float64(rec.hits)
		b += float64(rec.misses)
	}
	return a / (a + b)
}

// Count returns (hits, misses) recorded for an informant.
func (t *InformantTracker) Count(informant string) (hits, misses int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rec := t.records[informant]; rec != nil {
		return rec.hits, rec.misses
	}
	return 0, 0
}

// Informants lists tracked informants sorted by posterior reliability
// descending.
func (t *InformantTracker) Informants() []string {
	t.mu.RLock()
	names := make([]string, 0, len(t.records))
	for n := range t.records {
		names = append(names, n)
	}
	t.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool {
		ri, rj := t.Reliability(names[i]), t.Reliability(names[j])
		if ri != rj {
			return ri > rj
		}
		return names[i] < names[j]
	})
	return names
}

// InformantPool is a synthetic population of knowledge holders with
// per-informant latent skill used by the report generator.
type InformantPool struct {
	// Names lists informant IDs.
	Names []string
	// Skill maps informant → probability of a correct call in (0,1).
	Skill map[string]float64
}

// NewInformantPool creates n informants with skills spread over
// [0.45, 0.85] deterministically per seed: some elders are sharp, some
// reports are noise — the fusion layer has to cope with both.
func NewInformantPool(n int, seed int64) (*InformantPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ik: pool size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	p := &InformantPool{Skill: make(map[string]float64, n)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("informant-%02d", i)
		p.Names = append(p.Names, name)
		p.Skill[name] = 0.45 + 0.4*rng.Float64()
	}
	return p, nil
}
