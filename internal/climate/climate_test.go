package climate

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func newGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(DefaultParams(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorReproducible(t *testing.T) {
	a := newGen(t, 7).GenerateDays(400)
	b := newGen(t, 7).GenerateDays(400)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("day %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := newGen(t, 8).GenerateDays(400)
	same := true
	for i := range a {
		if a[i].RainMM != c[i].RainMM {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGeneratorParamsValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.AnnualRainMM = 0 },
		func(p *Params) { p.SoilCapacityMM = -1 },
		func(p *Params) { p.StartDate = time.Time{} },
	}
	for i, mutate := range cases {
		p := DefaultParams(1)
		mutate(&p)
		if _, err := NewGenerator(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorRanges(t *testing.T) {
	days := newGen(t, 42).GenerateYears(5)
	for i, d := range days {
		if d.RainMM < 0 {
			t.Fatalf("day %d: negative rain %v", i, d.RainMM)
		}
		if d.SoilMoisture < 0 || d.SoilMoisture > 1 {
			t.Fatalf("day %d: soil moisture %v outside [0,1]", i, d.SoilMoisture)
		}
		if d.RelHumidity < 0 || d.RelHumidity > 100 {
			t.Fatalf("day %d: humidity %v outside [0,100]", i, d.RelHumidity)
		}
		if d.WindSpeedMS < 0 {
			t.Fatalf("day %d: negative wind %v", i, d.WindSpeedMS)
		}
		if d.NDVI < 0 || d.NDVI > 1 {
			t.Fatalf("day %d: NDVI %v outside [0,1]", i, d.NDVI)
		}
		if d.TempC < -20 || d.TempC > 50 {
			t.Fatalf("day %d: implausible temperature %v", i, d.TempC)
		}
	}
}

func TestAnnualRainfallCalibration(t *testing.T) {
	days := newGen(t, 3).GenerateYears(20)
	var total float64
	for _, d := range days {
		total += d.RainMM
	}
	annual := total / 20
	// Within ±40% of the target — it is a stochastic generator, not a fit.
	if annual < 330 || annual > 770 {
		t.Errorf("annual rainfall %v mm far from 550 target", annual)
	}
}

func TestSummerRainfallRegime(t *testing.T) {
	days := newGen(t, 5).GenerateYears(10)
	var summer, winter float64
	for _, d := range days {
		m := d.Date.Month()
		switch m {
		case time.December, time.January, time.February:
			summer += d.RainMM
		case time.June, time.July, time.August:
			winter += d.RainMM
		}
	}
	if summer < 3*winter {
		t.Errorf("expected summer-dominant rainfall: summer=%v winter=%v", summer, winter)
	}
}

func TestDateProgression(t *testing.T) {
	g := newGen(t, 1)
	d1 := g.Next()
	d2 := g.Next()
	if !d2.Date.Equal(d1.Date.AddDate(0, 0, 1)) {
		t.Errorf("dates should be consecutive: %v then %v", d1.Date, d2.Date)
	}
}

func TestSPIFitAndProperties(t *testing.T) {
	days := newGen(t, 11).GenerateYears(15)
	rain := make([]float64, len(days))
	for i, d := range days {
		rain[i] = d.RainMM
	}
	spi, err := NewSPI(90)
	if err != nil {
		t.Fatal(err)
	}
	if spi.Fitted() {
		t.Error("not fitted yet")
	}
	if _, err := spi.Value(10); err == nil {
		t.Error("Value before Fit should error")
	}
	if err := spi.Fit(rain); err != nil {
		t.Fatal(err)
	}
	shape, scale, pz := spi.Params()
	if shape <= 0 || scale <= 0 || pz < 0 || pz > 1 {
		t.Fatalf("bad params: %v %v %v", shape, scale, pz)
	}
	series, err := spi.Series(rain)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up NaN prefix.
	for i := 0; i < 89; i++ {
		if !math.IsNaN(series[i]) {
			t.Fatalf("day %d should be NaN warm-up", i)
		}
	}
	// Distribution: mean ≈ 0, sd ≈ 1 over the fitted climatology.
	var sum, sum2 float64
	n := 0
	for _, v := range series[89:] {
		sum += v
		sum2 += v * v
		n++
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean) > 0.25 {
		t.Errorf("SPI mean %v should be near 0", mean)
	}
	if sd < 0.6 || sd > 1.4 {
		t.Errorf("SPI sd %v should be near 1", sd)
	}
}

func TestSPIMonotoneInTotal(t *testing.T) {
	days := newGen(t, 13).GenerateYears(10)
	rain := make([]float64, len(days))
	for i, d := range days {
		rain[i] = d.RainMM
	}
	spi, _ := NewSPI(90)
	if err := spi.Fit(rain); err != nil {
		t.Fatal(err)
	}
	f := func(raw1, raw2 float64) bool {
		a := math.Abs(math.Mod(raw1, 300))
		b := math.Abs(math.Mod(raw2, 300))
		if a > b {
			a, b = b, a
		}
		va, err1 := spi.Value(a)
		vb, err2 := spi.Value(b)
		return err1 == nil && err2 == nil && va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSPIWindowValidation(t *testing.T) {
	if _, err := NewSPI(2); err == nil {
		t.Error("tiny window should be rejected")
	}
	spi, _ := NewSPI(30)
	if err := spi.Fit([]float64{1, 2, 3}); err == nil {
		t.Error("too-short climatology should be rejected")
	}
	allDry := make([]float64, 400)
	if err := spi.Fit(allDry); err == nil {
		t.Error("all-dry climatology should be rejected")
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413, 1.0},
		{0.1587, -1.0},
		{0.9772, 2.0},
		{0.0228, -2.0},
	}
	for _, c := range cases {
		if got := normQuantile(c.p); math.Abs(got-c.want) > 0.01 {
			t.Errorf("normQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("boundary quantiles should be ±Inf")
	}
}

func TestGammaCDF(t *testing.T) {
	// For shape k=1 the gamma is Exp(1): CDF(x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := gammaCDF(x, 1); math.Abs(got-want) > 1e-9 {
			t.Errorf("gammaCDF(%v,1) = %v, want %v", x, got, want)
		}
	}
	if gammaCDF(0, 2) != 0 {
		t.Error("CDF(0) should be 0")
	}
	if got := gammaCDF(1000, 2); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(large) = %v, want ~1", got)
	}
	// Monotone in x.
	prev := 0.0
	for x := 0.1; x < 20; x += 0.3 {
		cur := gammaCDF(x, 2.3)
		if cur < prev-1e-12 {
			t.Fatalf("gammaCDF not monotone at %v", x)
		}
		prev = cur
	}
}

func TestLabelGroundTruth(t *testing.T) {
	days := newGen(t, 21).GenerateYears(15)
	truth, err := Label(days, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.SPI) != len(days) || len(truth.Severity) != len(days) {
		t.Fatal("truth arrays must match series length")
	}
	frac := truth.DroughtFraction()
	if frac <= 0 || frac > 0.6 {
		t.Errorf("drought fraction %v implausible (generator should produce some droughts)", frac)
	}
	if len(truth.Episodes) == 0 {
		t.Fatal("15 years should contain at least one drought episode")
	}
	for _, ep := range truth.Episodes {
		if ep.Days <= 0 {
			t.Errorf("episode with non-positive length: %+v", ep)
		}
		if ep.Peak >= -1.0 {
			t.Errorf("episode peak %v should be < -1 (onset condition)", ep.Peak)
		}
		if ep.End.Before(ep.Start) {
			t.Errorf("episode ends before it starts: %+v", ep)
		}
	}
}

func TestLabelEmpty(t *testing.T) {
	if _, err := Label(nil, 90); err == nil {
		t.Error("empty series should error")
	}
}

func TestSeverityFromSPI(t *testing.T) {
	cases := []struct {
		spi  float64
		want Severity
	}{
		{0.5, SeverityNormal},
		{-0.4, SeverityNormal},
		{-0.7, SeverityWatch},
		{-1.2, SeverityWarning},
		{-1.7, SeveritySevere},
		{-2.5, SeverityExtreme},
		{math.NaN(), SeverityNormal},
	}
	for _, c := range cases {
		if got := SeverityFromSPI(c.spi); got != c.want {
			t.Errorf("SeverityFromSPI(%v) = %v, want %v", c.spi, got, c.want)
		}
	}
}

func TestSeverityString(t *testing.T) {
	for s, want := range map[Severity]string{
		SeverityNormal: "normal", SeverityWatch: "watch",
		SeverityWarning: "warning", SeveritySevere: "severe",
		SeverityExtreme: "extreme",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestENSOModulatesDrought(t *testing.T) {
	// With strong ENSO forcing, multi-year variability should create more
	// distinct episodes than a forcing-free run of the same seed.
	p := DefaultParams(31)
	p.ENSOStrength = 0.8
	g1, _ := NewGenerator(p)
	t1, err := Label(g1.GenerateYears(20), 90)
	if err != nil {
		t.Fatal(err)
	}
	p2 := DefaultParams(31)
	p2.ENSOStrength = 0
	g2, _ := NewGenerator(p2)
	t2, err := Label(g2.GenerateYears(20), 90)
	if err != nil {
		t.Fatal(err)
	}
	// Not a strict invariant, but forced runs should not have *fewer* dry
	// days by a large margin.
	if t1.DroughtFraction() < t2.DroughtFraction()*0.3 {
		t.Errorf("ENSO-forced drought fraction %v vs unforced %v looks wrong",
			t1.DroughtFraction(), t2.DroughtFraction())
	}
}

func TestWindowSums(t *testing.T) {
	s := windowSums([]float64{1, 2, 3, 4}, 2)
	want := []float64{3, 5, 7}
	if len(s) != len(want) {
		t.Fatalf("windowSums = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("windowSums[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	if windowSums([]float64{1}, 5) != nil {
		t.Error("short input should yield nil")
	}
}
