package climate

import (
	"fmt"
	"math"
)

// SPI computes the standardized precipitation index over a trailing
// accumulation window: rainfall sums are fitted to a gamma distribution
// (Thom's maximum-likelihood approximation, with a mixed-distribution
// correction for zero totals) and transformed to standard normal
// quantiles. SPI < -1 indicates moderate drought, < -1.5 severe, < -2
// extreme (McKee et al. 1993 convention).
type SPI struct {
	// WindowDays is the accumulation window (30 = SPI-1, 90 = SPI-3).
	WindowDays int
	shape      float64 // fitted gamma k
	scale      float64 // fitted gamma θ
	probZero   float64 // probability of an all-dry window
	fitted     bool
}

// NewSPI returns an SPI calculator for the given window.
func NewSPI(windowDays int) (*SPI, error) {
	if windowDays < 5 {
		return nil, fmt.Errorf("climate: SPI window %d too short", windowDays)
	}
	return &SPI{WindowDays: windowDays}, nil
}

// Fit estimates the gamma parameters from a climatology of daily rainfall
// (several years of data). It must be called before Value.
func (s *SPI) Fit(dailyRain []float64) error {
	sums := windowSums(dailyRain, s.WindowDays)
	if len(sums) < 30 {
		return fmt.Errorf("climate: need at least 30 windows to fit SPI, got %d", len(sums))
	}
	var nonzero []float64
	for _, v := range sums {
		if v > 0 {
			nonzero = append(nonzero, v)
		}
	}
	s.probZero = float64(len(sums)-len(nonzero)) / float64(len(sums))
	if len(nonzero) < 10 {
		return fmt.Errorf("climate: too few wet windows (%d) to fit gamma", len(nonzero))
	}
	// Thom (1958) approximation: A = ln(mean) - mean(ln x),
	// k = (1 + sqrt(1 + 4A/3)) / (4A), θ = mean/k.
	var sum, sumLog float64
	for _, v := range nonzero {
		sum += v
		sumLog += math.Log(v)
	}
	n := float64(len(nonzero))
	mean := sum / n
	a := math.Log(mean) - sumLog/n
	if a <= 0 {
		// Degenerate (all equal); fall back to a tight distribution.
		a = 1e-6
	}
	s.shape = (1 + math.Sqrt(1+4*a/3)) / (4 * a)
	s.scale = mean / s.shape
	s.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded.
func (s *SPI) Fitted() bool { return s.fitted }

// Params returns the fitted (shape, scale, probZero).
func (s *SPI) Params() (shape, scale, probZero float64) {
	return s.shape, s.scale, s.probZero
}

// Value computes the SPI for a window total.
func (s *SPI) Value(windowTotalMM float64) (float64, error) {
	if !s.fitted {
		return 0, fmt.Errorf("climate: SPI not fitted")
	}
	// Mixed distribution: H(x) = q + (1-q) G(x).
	var h float64
	if windowTotalMM <= 0 {
		h = s.probZero / 2 // midpoint convention for the atom at zero
		if h <= 0 {
			h = 1e-4
		}
	} else {
		g := gammaCDF(windowTotalMM/s.scale, s.shape)
		h = s.probZero + (1-s.probZero)*g
	}
	h = clamp(h, 1e-6, 1-1e-6)
	return normQuantile(h), nil
}

// Series computes the SPI for every day of a daily-rain series (NaN for
// the warm-up prefix shorter than the window).
func (s *SPI) Series(dailyRain []float64) ([]float64, error) {
	if !s.fitted {
		return nil, fmt.Errorf("climate: SPI not fitted")
	}
	out := make([]float64, len(dailyRain))
	var running float64
	for i := range dailyRain {
		running += dailyRain[i]
		if i >= s.WindowDays {
			running -= dailyRain[i-s.WindowDays]
		}
		if i < s.WindowDays-1 {
			out[i] = math.NaN()
			continue
		}
		v, err := s.Value(running)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// windowSums returns the trailing-window totals for every complete window.
func windowSums(daily []float64, w int) []float64 {
	if len(daily) < w {
		return nil
	}
	out := make([]float64, 0, len(daily)-w+1)
	var running float64
	for i, v := range daily {
		running += v
		if i >= w {
			running -= daily[i-w]
		}
		if i >= w-1 {
			out = append(out, running)
		}
	}
	return out
}

// gammaCDF is the regularized lower incomplete gamma P(k, x) computed by
// series expansion (x < k+1) or continued fraction (x ≥ k+1) — the
// standard Numerical-Recipes decomposition.
func gammaCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < k+1 {
		return gammaSeries(x, k)
	}
	return 1 - gammaContinuedFraction(x, k)
}

func gammaSeries(x, k float64) float64 {
	const maxIter = 500
	const eps = 1e-12
	ap := k
	sum := 1.0 / k
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(k)
	return sum * math.Exp(-x+k*math.Log(x)-lg)
}

func gammaContinuedFraction(x, k float64) float64 {
	const maxIter = 500
	const eps = 1e-12
	const tiny = 1e-300
	b := x + 1 - k
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - k)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(k)
	return math.Exp(-x+k*math.Log(x)-lg) * h
}

// normQuantile is the inverse standard normal CDF (Acklam's rational
// approximation; |ε| < 1.15e-9 over the full domain).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
