package climate

import (
	"fmt"
	"math"
	"time"
)

// Severity is the ground-truth drought severity of a day, aligned with
// the DVI scale of the drought ontology.
type Severity int

// Severity bands (SPI thresholds per McKee et al.).
const (
	SeverityNormal  Severity = iota
	SeverityWatch            // SPI < -0.5
	SeverityWarning          // SPI < -1.0
	SeveritySevere           // SPI < -1.5
	SeverityExtreme          // SPI < -2.0
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityNormal:
		return "normal"
	case SeverityWatch:
		return "watch"
	case SeverityWarning:
		return "warning"
	case SeveritySevere:
		return "severe"
	case SeverityExtreme:
		return "extreme"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// SeverityFromSPI maps an SPI value to a severity band.
func SeverityFromSPI(spi float64) Severity {
	switch {
	case math.IsNaN(spi):
		return SeverityNormal
	case spi < -2.0:
		return SeverityExtreme
	case spi < -1.5:
		return SeveritySevere
	case spi < -1.0:
		return SeverityWarning
	case spi < -0.5:
		return SeverityWatch
	default:
		return SeverityNormal
	}
}

// Episode is a contiguous drought episode in the ground truth.
type Episode struct {
	Start, End time.Time
	// Peak is the most negative SPI reached.
	Peak float64
	// Days is the episode length.
	Days int
}

// Truth is the ground-truth labelling of a simulated series.
type Truth struct {
	// SPI holds the SPI value per day (NaN during warm-up).
	SPI []float64
	// Severity holds the per-day severity band.
	Severity []Severity
	// InDrought marks days belonging to a drought episode
	// (onset at SPI < -1, release at SPI > 0 — standard run definition).
	InDrought []bool
	// Episodes lists the distinct episodes.
	Episodes []Episode
}

// Label computes ground truth for a daily series using an SPI fitted on
// the series itself (the usual climatological convention) with the given
// accumulation window.
func Label(days []Day, windowDays int) (*Truth, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("climate: empty series")
	}
	rain := make([]float64, len(days))
	for i, d := range days {
		rain[i] = d.RainMM
	}
	spi, err := NewSPI(windowDays)
	if err != nil {
		return nil, err
	}
	if err := spi.Fit(rain); err != nil {
		return nil, err
	}
	series, err := spi.Series(rain)
	if err != nil {
		return nil, err
	}
	t := &Truth{
		SPI:       series,
		Severity:  make([]Severity, len(days)),
		InDrought: make([]bool, len(days)),
	}
	inEpisode := false
	var ep Episode
	for i, v := range series {
		t.Severity[i] = SeverityFromSPI(v)
		if math.IsNaN(v) {
			continue
		}
		if !inEpisode && v < -1.0 {
			inEpisode = true
			ep = Episode{Start: days[i].Date, Peak: v}
		}
		if inEpisode {
			t.InDrought[i] = true
			ep.Days++
			if v < ep.Peak {
				ep.Peak = v
			}
			if v > 0 {
				ep.End = days[i].Date
				inEpisode = false
				t.Episodes = append(t.Episodes, ep)
			}
		}
	}
	if inEpisode {
		ep.End = days[len(days)-1].Date
		t.Episodes = append(t.Episodes, ep)
	}
	return t, nil
}

// DroughtFraction returns the fraction of labelled days in drought.
func (t *Truth) DroughtFraction() float64 {
	if len(t.InDrought) == 0 {
		return 0
	}
	n := 0
	for _, d := range t.InDrought {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(t.InDrought))
}
