// Package climate provides the synthetic Free State climate substrate:
// a stochastic daily weather generator with seasonality and ENSO-like
// multi-year forcing, a soil-moisture bucket model, the standardized
// precipitation index (SPI), and an SPI-based drought ground-truth
// labeller.
//
// The paper's evaluation domain is the Free State province, a summer-
// rainfall region (wet season roughly October–March, ~550 mm/yr). The
// generator is calibrated to that regime so that forecast-skill
// experiments (EXP-C1) run against drought episodes with realistic
// persistence; the substitution for the real testbed is documented in
// DESIGN.md.
package climate

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Day is one day of simulated weather at one site.
type Day struct {
	// Date is the calendar date (UTC midnight).
	Date time.Time
	// RainMM is the daily rainfall depth in millimetres.
	RainMM float64
	// TempC is the daily mean air temperature in °C.
	TempC float64
	// SoilMoisture is the volumetric soil water fraction in [0,1].
	SoilMoisture float64
	// RelHumidity is the relative humidity in percent.
	RelHumidity float64
	// WindSpeedMS is the wind speed in m/s.
	WindSpeedMS float64
	// NDVI is the vegetation index in [0,1].
	NDVI float64
	// WaterLevelM is the reservoir/river stage in metres.
	WaterLevelM float64
	// ENSO is the slowly-varying forcing anomaly in roughly [-1,1]
	// (negative = La Niña-like wet, positive = El Niño-like dry).
	ENSO float64
}

// Params configures the generator. The zero value is not useful; start
// from DefaultParams.
type Params struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// StartDate is the first simulated day.
	StartDate time.Time
	// AnnualRainMM is the target climatological annual rainfall.
	AnnualRainMM float64
	// WetSeasonPeakDOY is the day-of-year of the rainfall peak
	// (~January 15 = 15 for the Free State).
	WetSeasonPeakDOY int
	// TempMeanC / TempAmplitudeC shape the seasonal temperature cycle.
	TempMeanC      float64
	TempAmplitudeC float64
	// ENSOPeriodYears is the pseudo-period of the multi-year forcing.
	ENSOPeriodYears float64
	// ENSOStrength scales how strongly the forcing modulates rainfall
	// occurrence (0 disables it).
	ENSOStrength float64
	// SoilCapacityMM is the bucket size of the soil model.
	SoilCapacityMM float64
}

// DefaultParams returns a Free State-like parameterization.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:             seed,
		StartDate:        time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC),
		AnnualRainMM:     550,
		WetSeasonPeakDOY: 15,
		TempMeanC:        16,
		TempAmplitudeC:   9,
		ENSOPeriodYears:  4.2,
		ENSOStrength:     0.55,
		SoilCapacityMM:   120,
	}
}

// Generator produces a daily weather series. It is not safe for
// concurrent use; create one per goroutine.
type Generator struct {
	p       Params
	rng     *rand.Rand
	day     int
	wet     bool    // yesterday's rain state (Markov chain)
	soilMM  float64 // bucket storage
	tempAn  float64 // AR(1) temperature anomaly
	ndvi    float64
	levelM  float64
	ensoPhi float64 // random phase for the ENSO oscillation
}

// NewGenerator returns a generator with the given parameters.
func NewGenerator(p Params) (*Generator, error) {
	if p.AnnualRainMM <= 0 {
		return nil, fmt.Errorf("climate: AnnualRainMM must be positive, got %v", p.AnnualRainMM)
	}
	if p.SoilCapacityMM <= 0 {
		return nil, fmt.Errorf("climate: SoilCapacityMM must be positive, got %v", p.SoilCapacityMM)
	}
	if p.StartDate.IsZero() {
		return nil, fmt.Errorf("climate: StartDate must be set")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	return &Generator{
		p:       p,
		rng:     rng,
		soilMM:  p.SoilCapacityMM * 0.5,
		ndvi:    0.45,
		levelM:  3.0,
		ensoPhi: rng.Float64() * 2 * math.Pi,
	}, nil
}

// seasonality returns the rainfall seasonality factor in [0,1] for a
// day-of-year: 1 at the wet-season peak, ~0 mid-winter.
func (g *Generator) seasonality(doy int) float64 {
	phase := 2 * math.Pi * float64(doy-g.p.WetSeasonPeakDOY) / 365
	return 0.5 * (1 + math.Cos(phase))
}

// enso returns the slowly varying forcing for absolute day index d.
func (g *Generator) enso(d int) float64 {
	if g.p.ENSOStrength == 0 {
		return 0
	}
	years := float64(d) / 365.25
	return math.Sin(2*math.Pi*years/g.p.ENSOPeriodYears + g.ensoPhi)
}

// Next generates the next day.
func (g *Generator) Next() Day {
	date := g.p.StartDate.AddDate(0, 0, g.day)
	doy := date.YearDay()
	season := g.seasonality(doy)
	enso := g.enso(g.day)

	// --- rainfall: 2-state Markov occurrence + gamma-ish amounts ---
	// Base wet probability scales with seasonality; ENSO>0 suppresses it.
	pWet := 0.12 + 0.38*season
	pWet *= 1 - g.p.ENSOStrength*0.6*enso
	// Persistence: wetter after a wet day.
	if g.wet {
		pWet = math.Min(0.95, pWet*1.9)
	}
	pWet = clamp(pWet, 0.01, 0.95)

	var rain float64
	if g.rng.Float64() < pWet {
		g.wet = true
		// Amount: sum of two exponentials approximates a gamma with
		// shape 2; scaled so the annual total matches AnnualRainMM.
		meanWetDays := 365 * (0.12 + 0.38*0.5) * 1.35 // rough expected wet days
		meanAmount := g.p.AnnualRainMM / meanWetDays
		rain = meanAmount / 2 * (g.rng.ExpFloat64() + g.rng.ExpFloat64())
		rain *= 1 - 0.3*g.p.ENSOStrength*enso // dry phases also shrink events
		if rain < 0.1 {
			rain = 0.1
		}
	} else {
		g.wet = false
	}

	// --- temperature: seasonal cycle + AR(1) anomaly + ENSO warm bias ---
	seasonalTemp := g.p.TempMeanC + g.p.TempAmplitudeC*math.Cos(2*math.Pi*float64(doy-15)/365)
	g.tempAn = 0.82*g.tempAn + g.rng.NormFloat64()*1.6
	temp := seasonalTemp + g.tempAn + 1.2*enso
	if g.wet {
		temp -= 2.0 // rain days are cooler
	}

	// --- soil bucket ---
	// Evapotranspiration rises with temperature and falls with humidity.
	et := clamp(0.06*math.Max(temp, 0)+0.6, 0.4, 4.5)
	g.soilMM += rain - et*math.Sqrt(g.soilMM/g.p.SoilCapacityMM)
	g.soilMM = clamp(g.soilMM, 0, g.p.SoilCapacityMM)
	soil := g.soilMM / g.p.SoilCapacityMM

	// --- humidity, wind ---
	rh := clamp(35+45*soil+8*g.rng.NormFloat64()+boolTo(g.wet, 15), 8, 100)
	wind := math.Abs(2.8 + 1.4*g.rng.NormFloat64() + 0.8*enso)

	// --- NDVI: slow relaxation toward soil-driven equilibrium ---
	targetNDVI := 0.15 + 0.6*soil
	g.ndvi += 0.03 * (targetNDVI - g.ndvi)
	g.ndvi = clamp(g.ndvi+0.005*g.rng.NormFloat64(), 0.05, 0.9)

	// --- water level: slow reservoir response ---
	g.levelM += 0.012*rain - 0.02 - 0.004*math.Max(temp-20, 0)
	g.levelM = clamp(g.levelM, 0.2, 8)

	g.day++
	return Day{
		Date:         date,
		RainMM:       round2(rain),
		TempC:        round2(temp),
		SoilMoisture: round4(soil),
		RelHumidity:  round2(rh),
		WindSpeedMS:  round2(wind),
		NDVI:         round4(g.ndvi),
		WaterLevelM:  round2(g.levelM),
		ENSO:         round4(enso),
	}
}

// GenerateDays produces n consecutive days.
func (g *Generator) GenerateDays(n int) []Day {
	out := make([]Day, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// GenerateYears produces whole 365-day years.
func (g *Generator) GenerateYears(years int) []Day {
	return g.GenerateDays(365 * years)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolTo(b bool, v float64) float64 {
	if b {
		return v
	}
	return 0
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
