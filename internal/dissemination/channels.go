package dissemination

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/forecast"
)

// Channel is one output medium.
type Channel interface {
	// Name identifies the channel ("sms", "billboard", ...).
	Name() string
	// Deliver pushes one bulletin to the medium.
	Deliver(b forecast.Bulletin) error
}

// --- smart billboard ---

// SmartBillboard models the strategically-placed smart screens: it keeps
// the latest bulletin per district and renders a display board.
type SmartBillboard struct {
	mu      sync.RWMutex
	current map[string]forecast.Bulletin
	updates int
}

// NewSmartBillboard returns an empty billboard network.
func NewSmartBillboard() *SmartBillboard {
	return &SmartBillboard{current: make(map[string]forecast.Bulletin)}
}

// Name implements Channel.
func (*SmartBillboard) Name() string { return "billboard" }

// Deliver implements Channel.
func (s *SmartBillboard) Deliver(b forecast.Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current[b.District] = b
	s.updates++
	return nil
}

// Display renders the board: one line per district, sorted.
func (s *SmartBillboard) Display() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	districts := make([]string, 0, len(s.current))
	for d := range s.current {
		districts = append(districts, d)
	}
	sort.Strings(districts)
	var sb strings.Builder
	for _, d := range districts {
		sb.WriteString(s.current[d].Headline())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Updates returns the number of refreshes.
func (s *SmartBillboard) Updates() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.updates
}

// --- SMS broadcast ---

// SMSBroadcast models the mobile channel: a per-district subscriber list
// receiving 160-character messages.
type SMSBroadcast struct {
	mu sync.Mutex
	// subscribers maps district → phone numbers.
	subscribers map[string][]string
	// sent logs (number, text) pairs.
	sent []SMSMessage
}

// SMSMessage is one logged SMS.
type SMSMessage struct {
	To   string
	Text string
}

// NewSMSBroadcast returns an empty broadcaster.
func NewSMSBroadcast() *SMSBroadcast {
	return &SMSBroadcast{subscribers: make(map[string][]string)}
}

// Name implements Channel.
func (*SMSBroadcast) Name() string { return "sms" }

// Subscribe adds a phone number for a district.
func (s *SMSBroadcast) Subscribe(district, phone string) error {
	if district == "" || phone == "" {
		return fmt.Errorf("dissemination: subscription needs district and phone")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subscribers[district] = append(s.subscribers[district], phone)
	return nil
}

// Deliver implements Channel: every district subscriber gets the
// headline, truncated to the 160-character SMS limit.
func (s *SMSBroadcast) Deliver(b forecast.Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	text := b.Headline()
	if len(text) > 160 {
		text = text[:157] + "..."
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, phone := range s.subscribers[b.District] {
		s.sent = append(s.sent, SMSMessage{To: phone, Text: text})
	}
	return nil
}

// Sent returns a copy of the send log.
func (s *SMSBroadcast) Sent() []SMSMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SMSMessage, len(s.sent))
	copy(out, s.sent)
	return out
}

// --- IP radio ---

// IPRadio models community radio bulletins: an ordered broadcast script
// of localized announcements.
type IPRadio struct {
	mu       sync.Mutex
	script   []string
	language string
}

// NewIPRadio returns a radio channel announcing in the given language
// tag ("en", "st", ...). The tag only labels the script; translation is
// out of scope.
func NewIPRadio(language string) *IPRadio {
	return &IPRadio{language: language}
}

// Name implements Channel.
func (*IPRadio) Name() string { return "ip-radio" }

// Deliver implements Channel.
func (r *IPRadio) Deliver(b forecast.Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.script = append(r.script, fmt.Sprintf("(%s) %s", r.language, b.Headline()))
	return nil
}

// Script returns the accumulated broadcast script.
func (r *IPRadio) Script() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.script))
	copy(out, r.script)
	return out
}

// --- hub ---

// Route is one channel registration: the channel plus its minimum
// severity (SMS subscribers should not be woken for "normal").
type Route struct {
	Channel Channel
	// MinBand is the lowest DVI band the channel receives.
	MinBand forecast.DVIBand
}

// HubStats summarizes fan-out accounting.
type HubStats struct {
	Received  int
	Delivered map[string]int
	Filtered  map[string]int
	Errors    map[string]int
}

// Hub fans bulletins out to registered channels.
type Hub struct {
	mu     sync.Mutex
	routes []Route
	stats  HubStats
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{stats: HubStats{
		Delivered: make(map[string]int),
		Filtered:  make(map[string]int),
		Errors:    make(map[string]int),
	}}
}

// Register adds a channel with a severity floor.
func (h *Hub) Register(ch Channel, minBand forecast.DVIBand) error {
	if ch == nil {
		return fmt.Errorf("dissemination: nil channel")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.routes {
		if r.Channel.Name() == ch.Name() {
			return fmt.Errorf("dissemination: channel %q already registered", ch.Name())
		}
	}
	h.routes = append(h.routes, Route{Channel: ch, MinBand: minBand})
	return nil
}

// Publish fans one bulletin out. Channel errors are recorded, not
// propagated — one broken billboard must not silence the SMS channel.
func (h *Hub) Publish(b forecast.Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	h.mu.Lock()
	routes := make([]Route, len(h.routes))
	copy(routes, h.routes)
	h.stats.Received++
	h.mu.Unlock()

	for _, r := range routes {
		name := r.Channel.Name()
		if b.Band < r.MinBand {
			h.mu.Lock()
			h.stats.Filtered[name]++
			h.mu.Unlock()
			continue
		}
		err := r.Channel.Deliver(b)
		h.mu.Lock()
		if err != nil {
			h.stats.Errors[name]++
		} else {
			h.stats.Delivered[name]++
		}
		h.mu.Unlock()
	}
	return nil
}

// Stats returns a deep copy of the accounting.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HubStats{
		Received:  h.stats.Received,
		Delivered: make(map[string]int, len(h.stats.Delivered)),
		Filtered:  make(map[string]int, len(h.stats.Filtered)),
		Errors:    make(map[string]int, len(h.stats.Errors)),
	}
	for k, v := range h.stats.Delivered {
		out.Delivered[k] = v
	}
	for k, v := range h.stats.Filtered {
		out.Filtered[k] = v
	}
	for k, v := range h.stats.Errors {
		out.Errors[k] = v
	}
	return out
}
