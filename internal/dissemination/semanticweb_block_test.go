package dissemination

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// TestSlowQueryDoesNotBlockDeliver: /sparql evaluates against an
// immutable snapshot, so even a long-running quadratic query must not
// stall Deliver. The old handler evaluated the whole query under the
// channel's read lock, so every Deliver blocked for the query's full
// duration. (Regression: fails on the pre-snapshot handler.)
func TestSlowQueryDoesNotBlockDeliver(t *testing.T) {
	s := NewSemanticWeb()
	n := 0
	addBulletins := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if err := s.Deliver(bulletin(fmt.Sprintf("d%02d", n%25), float64(n%97)/100)); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}

	// A cross join over all bulletin probabilities: quadratic in the
	// bulletin count, so its duration is tunable by data volume.
	query := fmt.Sprintf(
		`SELECT ?a ?b WHERE { ?a %s ?x . ?b %s ?y . FILTER(?x < ?y) }`,
		probProp.String(), probProp.String())
	runQuery := func() (time.Duration, int) {
		t0 := time.Now()
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/sparql?query="+url.QueryEscape(query), nil)
		s.ServeHTTP(rr, req)
		return time.Since(t0), rr.Code
	}

	// Calibrate: grow the graph until the query runs long enough to
	// measure blocking reliably.
	addBulletins(256)
	dur, code := runQuery()
	if code != 200 {
		t.Fatalf("query status %d", code)
	}
	for dur < 300*time.Millisecond && n < 16384 {
		addBulletins(n) // double
		dur, code = runQuery()
		if code != 200 {
			t.Fatalf("query status %d", code)
		}
	}
	if dur < 100*time.Millisecond {
		t.Skipf("could not make the query slow enough to measure (%v)", dur)
	}

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		if d, c := runQuery(); c != 200 {
			t.Errorf("concurrent query status %d after %v", c, d)
		}
	}()
	<-started
	time.Sleep(dur / 10) // let evaluation get well underway

	t0 := time.Now()
	if err := s.Deliver(bulletin("concurrent", 0.5)); err != nil {
		t.Fatal(err)
	}
	blocked := time.Since(t0)
	<-done

	if blocked > dur/4 {
		t.Fatalf("Deliver blocked %v behind a %v query; want snapshot-isolated delivery", blocked, dur)
	}
}
