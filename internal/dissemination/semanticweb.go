package dissemination

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/forecast"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// SemanticWeb is the semantic-web output channel: bulletins are
// materialized as RDF and served over HTTP —
//
//	GET /bulletins          → Turtle document of all bulletins
//	GET /sparql?query=...   → SELECT/ASK results as text
//	GET /health             → liveness probe
//
// It implements both Channel (for the hub) and http.Handler (for
// serving).
type SemanticWeb struct {
	// mu guards seq only; the graph is internally synchronized and
	// queries run on lock-free snapshots of it.
	mu    sync.Mutex
	graph *rdf.Graph
	// write commits a bulletin's triples: the graph's own AddAll for the
	// in-memory channel, or the persistent store's durable AddAll.
	write func(...rdf.Triple) error
	seq   int
}

var (
	_ Channel      = (*SemanticWeb)(nil)
	_ http.Handler = (*SemanticWeb)(nil)
)

// NewSemanticWeb returns an empty channel.
func NewSemanticWeb() *SemanticWeb {
	g := rdf.NewGraph()
	return &SemanticWeb{graph: g, write: g.AddAll}
}

// NewPersistentSemanticWeb returns a channel whose bulletins are
// durable: reads serve the store's graph, writes go through its WAL.
// The bulletin sequence resumes from the recovered graph, so IRIs
// minted after a restart never collide with persisted bulletins.
func NewPersistentSemanticWeb(graph *rdf.Graph, write func(...rdf.Triple) error) *SemanticWeb {
	return &SemanticWeb{
		graph: graph,
		write: write,
		// Each Deliver asserts exactly one rdf:type Bulletin triple, so
		// the class count is the number of sequence values consumed.
		seq: graph.Count(nil, rdf.RDFType, bulletinClass),
	}
}

// Name implements Channel.
func (*SemanticWeb) Name() string { return "semantic-web" }

// bulletin vocabulary (within the drought namespace).
var (
	bulletinClass = rdf.NSDEWS.IRI("Bulletin")
	probProp      = rdf.NSDEWS.IRI("probability")
	bandProp      = rdf.NSDEWS.IRI("dviBand")
	leadProp      = rdf.NSDEWS.IRI("leadDays")
	regionProp    = rdf.NSDEWS.IRI("affectsRegion")
	issuedProp    = rdf.NSDEWS.IRI("issued")
)

// Deliver implements Channel: the bulletin becomes RDF. The six triples
// go in as one atomic batch, so a concurrent query snapshot sees either
// the whole bulletin or none of it.
func (s *SemanticWeb) Deliver(b forecast.Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.seq++
	node := rdf.NSOBS.IRI(fmt.Sprintf("bulletin/%s/%d", b.District, s.seq))
	s.mu.Unlock()
	return s.write(
		rdf.T(node, rdf.RDFType, bulletinClass),
		rdf.T(node, regionProp, rdf.NSGEO.IRI(b.District)),
		rdf.T(node, probProp, rdf.NewFloat(b.Probability)),
		rdf.T(node, bandProp, rdf.NewLiteral(b.Band.String())),
		rdf.T(node, leadProp, rdf.NewInt(int64(b.LeadDays))),
		rdf.T(node, issuedProp,
			rdf.NewTypedLiteral(b.Issued.UTC().Format(time.RFC3339), rdf.XSDDateTime)),
	)
}

// Graph returns a snapshot of the bulletin graph.
func (s *SemanticWeb) Graph() *rdf.Graph {
	return s.graph.Clone()
}

// TripleCount returns the current size of the bulletin graph (cheap:
// no clone, no scan).
func (s *SemanticWeb) TripleCount() int { return s.graph.Len() }

// ServeHTTP implements http.Handler.
func (s *SemanticWeb) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/health":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/bulletins":
		w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
		// Serialize a stable clone: WriteTurtle reads the graph twice
		// (prefix scan, then triples), and a Deliver landing in between
		// could otherwise introduce prefixes the header never declared.
		if err := rdf.WriteTurtle(w, s.graph.Clone(), nil); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "/sparql":
		query := r.URL.Query().Get("query")
		if query == "" {
			http.Error(w, "missing ?query=", http.StatusBadRequest)
			return
		}
		// Evaluate against an immutable snapshot: a slow query holds no
		// lock, so concurrent Deliver calls from the dissemination hub
		// are never stalled behind it.
		engine := sparql.NewSnapshotEngine(s.graph.Snapshot())
		res, err := engine.Query(query)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch res := res.(type) {
		case *sparql.Solutions:
			fmt.Fprint(w, res.String())
		case bool:
			fmt.Fprintln(w, res)
		case *rdf.Graph:
			if err := rdf.WriteTurtle(w, res, nil); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	default:
		http.NotFound(w, r)
	}
}
