package dissemination

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/forecast"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// SemanticWeb is the semantic-web output channel: bulletins are
// materialized as RDF and served over HTTP —
//
//	GET /bulletins          → Turtle document of all bulletins
//	GET /sparql?query=...   → SELECT/ASK results as text
//	GET /health             → liveness probe
//
// It implements both Channel (for the hub) and http.Handler (for
// serving).
type SemanticWeb struct {
	mu    sync.RWMutex
	graph *rdf.Graph
	seq   int
}

var (
	_ Channel      = (*SemanticWeb)(nil)
	_ http.Handler = (*SemanticWeb)(nil)
)

// NewSemanticWeb returns an empty channel.
func NewSemanticWeb() *SemanticWeb {
	return &SemanticWeb{graph: rdf.NewGraph()}
}

// Name implements Channel.
func (*SemanticWeb) Name() string { return "semantic-web" }

// bulletin vocabulary (within the drought namespace).
var (
	bulletinClass = rdf.NSDEWS.IRI("Bulletin")
	probProp      = rdf.NSDEWS.IRI("probability")
	bandProp      = rdf.NSDEWS.IRI("dviBand")
	leadProp      = rdf.NSDEWS.IRI("leadDays")
	regionProp    = rdf.NSDEWS.IRI("affectsRegion")
	issuedProp    = rdf.NSDEWS.IRI("issued")
)

// Deliver implements Channel: the bulletin becomes RDF.
func (s *SemanticWeb) Deliver(b forecast.Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	node := rdf.NSOBS.IRI(fmt.Sprintf("bulletin/%s/%d", b.District, s.seq))
	g := s.graph
	g.MustAdd(rdf.T(node, rdf.RDFType, bulletinClass))
	g.MustAdd(rdf.T(node, regionProp, rdf.NSGEO.IRI(b.District)))
	g.MustAdd(rdf.T(node, probProp, rdf.NewFloat(b.Probability)))
	g.MustAdd(rdf.T(node, bandProp, rdf.NewLiteral(b.Band.String())))
	g.MustAdd(rdf.T(node, leadProp, rdf.NewInt(int64(b.LeadDays))))
	g.MustAdd(rdf.T(node, issuedProp,
		rdf.NewTypedLiteral(b.Issued.UTC().Format(time.RFC3339), rdf.XSDDateTime)))
	return nil
}

// Graph returns a snapshot of the bulletin graph.
func (s *SemanticWeb) Graph() *rdf.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Clone()
}

// ServeHTTP implements http.Handler.
func (s *SemanticWeb) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/health":
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/bulletins":
		s.mu.RLock()
		defer s.mu.RUnlock()
		w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
		if err := rdf.WriteTurtle(w, s.graph, nil); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "/sparql":
		query := r.URL.Query().Get("query")
		if query == "" {
			http.Error(w, "missing ?query=", http.StatusBadRequest)
			return
		}
		s.mu.RLock()
		engine := sparql.NewEngine(s.graph)
		res, err := engine.Query(query)
		s.mu.RUnlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch res := res.(type) {
		case *sparql.Solutions:
			fmt.Fprint(w, res.String())
		case bool:
			fmt.Fprintln(w, res)
		case *rdf.Graph:
			if err := rdf.WriteTurtle(w, res, nil); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	default:
		http.NotFound(w, r)
	}
}
