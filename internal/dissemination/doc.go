// Package dissemination implements the paper's output channels: "the
// information in form of drought vulnerability index is disseminated to
// the targeted end-user via various output IoT channels such as the
// smart screen [billboards], semantic web and mobile apps", plus the IP
// radio the motivation section calls for. A Hub fans bulletins out to
// every registered channel with per-channel severity filtering and
// delivery accounting.
//
// The SemanticWeb channel doubles as an http.Handler serving the
// bulletin graph as Turtle and answering SPARQL; cmd/dews -serve mounts
// it next to the streaming subscription gateway (internal/gateway),
// which serves the same bulletins as SSE streams and ack queues for
// remote consumers such as the SMS bridge.
package dissemination
