package dissemination

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/forecast"
)

func bulletin(district string, p float64) forecast.Bulletin {
	return forecast.Bulletin{
		District:    district,
		Issued:      time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		LeadDays:    30,
		Probability: p,
		Band:        forecast.BandFromProbability(p),
		Forecaster:  "fused",
	}
}

func TestSmartBillboard(t *testing.T) {
	b := NewSmartBillboard()
	if err := b.Deliver(bulletin("mangaung", 0.7)); err != nil {
		t.Fatal(err)
	}
	if err := b.Deliver(bulletin("xhariep", 0.2)); err != nil {
		t.Fatal(err)
	}
	// Replacement: newer bulletin for same district wins.
	if err := b.Deliver(bulletin("mangaung", 0.9)); err != nil {
		t.Fatal(err)
	}
	d := b.Display()
	if !strings.Contains(d, "mangaung") || !strings.Contains(d, "xhariep") {
		t.Errorf("display = %q", d)
	}
	if !strings.Contains(d, "EXTREME") {
		t.Errorf("latest bulletin should win: %q", d)
	}
	if b.Updates() != 3 {
		t.Errorf("updates = %d", b.Updates())
	}
	if err := b.Deliver(forecast.Bulletin{}); err == nil {
		t.Error("invalid bulletin should be rejected")
	}
}

func TestSMSBroadcast(t *testing.T) {
	s := NewSMSBroadcast()
	if err := s.Subscribe("mangaung", "+27-51-000-0001"); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("mangaung", "+27-51-000-0002"); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("xhariep", "+27-51-000-0003"); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("", ""); err == nil {
		t.Error("empty subscription should fail")
	}
	if err := s.Deliver(bulletin("mangaung", 0.8)); err != nil {
		t.Fatal(err)
	}
	sent := s.Sent()
	if len(sent) != 2 {
		t.Fatalf("sent = %d, want 2 (district-scoped)", len(sent))
	}
	for _, m := range sent {
		if len(m.Text) > 160 {
			t.Errorf("SMS over 160 chars: %q", m.Text)
		}
		if !strings.Contains(m.Text, "SEVERE") {
			t.Errorf("text = %q", m.Text)
		}
	}
}

func TestIPRadio(t *testing.T) {
	r := NewIPRadio("st")
	if err := r.Deliver(bulletin("fezile-dabi", 0.5)); err != nil {
		t.Fatal(err)
	}
	script := r.Script()
	if len(script) != 1 || !strings.HasPrefix(script[0], "(st)") {
		t.Errorf("script = %v", script)
	}
}

// failingChannel simulates a broken medium.
type failingChannel struct{}

func (failingChannel) Name() string                    { return "broken" }
func (failingChannel) Deliver(forecast.Bulletin) error { return errors.New("antenna down") }

func TestHubFanOutAndFiltering(t *testing.T) {
	hub := NewHub()
	board := NewSmartBillboard()
	sms := NewSMSBroadcast()
	if err := sms.Subscribe("mangaung", "+27-51-1"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Register(board, forecast.DVINormal); err != nil {
		t.Fatal(err)
	}
	// SMS only from warning upward.
	if err := hub.Register(sms, forecast.DVIWarning); err != nil {
		t.Fatal(err)
	}
	if err := hub.Register(failingChannel{}, forecast.DVINormal); err != nil {
		t.Fatal(err)
	}
	// Low-severity bulletin: board yes, SMS filtered, broken errors.
	if err := hub.Publish(bulletin("mangaung", 0.1)); err != nil {
		t.Fatal(err)
	}
	// High-severity bulletin: everyone.
	if err := hub.Publish(bulletin("mangaung", 0.9)); err != nil {
		t.Fatal(err)
	}
	st := hub.Stats()
	if st.Received != 2 {
		t.Errorf("received = %d", st.Received)
	}
	if st.Delivered["billboard"] != 2 {
		t.Errorf("billboard = %d", st.Delivered["billboard"])
	}
	if st.Delivered["sms"] != 1 || st.Filtered["sms"] != 1 {
		t.Errorf("sms delivered=%d filtered=%d", st.Delivered["sms"], st.Filtered["sms"])
	}
	if st.Errors["broken"] != 2 {
		t.Errorf("broken errors = %d", st.Errors["broken"])
	}
	if len(sms.Sent()) != 1 {
		t.Errorf("sms messages = %d", len(sms.Sent()))
	}
}

func TestHubValidation(t *testing.T) {
	hub := NewHub()
	if err := hub.Register(nil, forecast.DVINormal); err == nil {
		t.Error("nil channel should fail")
	}
	b := NewSmartBillboard()
	if err := hub.Register(b, forecast.DVINormal); err != nil {
		t.Fatal(err)
	}
	if err := hub.Register(NewSmartBillboard(), forecast.DVINormal); err == nil {
		t.Error("duplicate channel name should fail")
	}
	if err := hub.Publish(forecast.Bulletin{}); err == nil {
		t.Error("invalid bulletin should fail")
	}
}

func TestSemanticWebDeliverAndServe(t *testing.T) {
	sw := NewSemanticWeb()
	if err := sw.Deliver(bulletin("mangaung", 0.7)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Deliver(bulletin("xhariep", 0.2)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sw)
	defer srv.Close()

	// Turtle dump.
	resp, err := srv.Client().Get(srv.URL + "/bulletins")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/turtle") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "Bulletin") {
		t.Errorf("turtle = %s", body)
	}

	// SPARQL endpoint.
	q := `PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?b ?band WHERE { ?b a dews:Bulletin ; dews:dviBand ?band . }`
	resp, err = srv.Client().Get(srv.URL + "/sparql?query=" + urlQueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sparql status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "severe") {
		t.Errorf("sparql result = %s", body)
	}

	// Errors.
	resp, _ = srv.Client().Get(srv.URL + "/sparql")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
	resp, _ = srv.Client().Get(srv.URL + "/sparql?query=GARBAGE")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	resp, _ = srv.Client().Get(srv.URL + "/nope")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	resp, _ = srv.Client().Get(srv.URL + "/health")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("health status = %d", resp.StatusCode)
	}
}

func TestSemanticWebGraphSnapshot(t *testing.T) {
	sw := NewSemanticWeb()
	if err := sw.Deliver(bulletin("mangaung", 0.5)); err != nil {
		t.Fatal(err)
	}
	g := sw.Graph()
	if g.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	before := g.Len()
	// Mutating the snapshot must not affect the channel.
	if err := sw.Deliver(bulletin("xhariep", 0.5)); err != nil {
		t.Fatal(err)
	}
	if g.Len() != before {
		t.Error("snapshot aliased live graph")
	}
}

// urlQueryEscape is a minimal query escaper for tests.
func urlQueryEscape(s string) string {
	r := strings.NewReplacer(
		" ", "%20", "\n", "%0A", "#", "%23", "?", "%3F",
		"{", "%7B", "}", "%7D", "<", "%3C", ">", "%3E", ";", "%3B", "+", "%2B",
	)
	return r.Replace(s)
}
