package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/eventlog"
)

// DropPolicy says what a full subscriber queue does with a new message.
type DropPolicy int

// Drop policies.
const (
	// DropOldest evicts the oldest queued message (default: fresh data
	// beats stale data in a monitoring system).
	DropOldest DropPolicy = iota
	// DropNewest rejects the incoming message.
	DropNewest
)

// subscriber is the behavior Publish/retain/replay needs from any
// subscription flavor. Subscription (at-most-once poll), AckSubscription
// (at-least-once fetch/ack) and handlerSub (push dispatch) all satisfy
// it, so fan-out, retained replay and stats accounting exist once.
type subscriber interface {
	offer(m Message)
	shut()
	Dropped() int
}

// subEntry is one registered subscription in the broker's index.
type subEntry struct {
	id      int
	pattern string
	sub     subscriber
}

// Subscription is one subscriber's bounded mailbox.
type Subscription struct {
	// ID is the broker-assigned identity.
	ID int
	// Pattern is the topic filter.
	Pattern string

	policy DropPolicy
	mu     sync.Mutex
	queue  []Message
	cap    int
	// dropped counts messages lost to backpressure.
	dropped int
	// delivered counts messages enqueued.
	delivered int
	closed    bool
}

// Poll removes and returns up to max queued messages (all when max <= 0).
func (s *Subscription) Poll(max int) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Message, n)
	copy(out, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	return out
}

// Pending returns the queue depth.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Dropped returns how many messages backpressure discarded.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Delivered returns how many messages were enqueued in total.
func (s *Subscription) Delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

func (s *Subscription) offer(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.cap {
		if s.policy == DropNewest {
			s.dropped++
			return
		}
		// DropOldest.
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.dropped++
	}
	s.queue = append(s.queue, m)
	s.delivered++
}

func (s *Subscription) shut() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// BrokerStats summarizes broker activity. The JSON tags are the wire
// shape of the gateway's /stats endpoint.
type BrokerStats struct {
	Published  int `json:"published"`
	Deliveries int `json:"deliveries"`
	// Drops totals backpressure losses across every subscription flavor,
	// including the at-least-once tier. It is cumulative: drops by
	// since-removed subscriptions stay counted.
	Drops int `json:"drops"`
	// Subscriptions counts all live registrations: plain, acknowledged
	// and push-handler subscriptions.
	Subscriptions int `json:"subscriptions"`
	// DispatchWorkers is the size of the push-mode worker pool, 0 when
	// the dispatcher is not running.
	DispatchWorkers int `json:"dispatch_workers"`
}

// Broker is the application abstraction layer's pub/sub fabric. Delivery
// is synchronous fan-out into bounded per-subscriber queues; subscribers
// poll, fetch/ack, or receive pushes via the dispatcher. Matching goes
// through a segment-based topic trie, so publish cost scales with topic
// depth and match count, not with the total number of subscriptions.
type Broker struct {
	mu         sync.Mutex
	index      *topicTree
	entries    map[int]*subEntry
	nextID     int
	published  int
	deliveries int
	// nextOffset is the sequence number the next publish receives. It is
	// monotonic within a process; with a log attached it continues the
	// durable sequence across restarts (AttachLog advances it).
	nextOffset uint64
	// log, when set, receives a durable copy of every published message
	// before fan-out (write-through).
	log *eventlog.Log
	// retained keeps the last message per concrete topic so late
	// subscribers can catch up (MQTT-style retained messages).
	retained map[string]Message
	// removedDrops accumulates the drop counts of unsubscribed
	// subscriptions so Stats stays cumulative.
	removedDrops int
	// retainedLimit caps distinct retained topics (0 = unlimited).
	retainedLimit int

	dispatchMu sync.Mutex
	dispatch   *dispatcher
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		index:      newTopicTree(),
		entries:    make(map[int]*subEntry),
		retained:   make(map[string]Message),
		nextOffset: 1,
	}
}

// register validates the pattern, indexes the subscriber, replays
// retained messages in deterministic topic order, and returns the
// assigned ID. All subscription flavors funnel through here.
func (b *Broker) register(pattern string, sub subscriber) (int, error) {
	if err := ValidatePattern(pattern); err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	e := &subEntry{id: b.nextID, pattern: pattern, sub: sub}
	b.entries[e.id] = e
	b.index.insert(pattern, e)

	topics := make([]string, 0, len(b.retained))
	for t := range b.retained {
		if TopicMatch(pattern, t) {
			topics = append(topics, t)
		}
	}
	sort.Strings(topics)
	for _, t := range topics {
		sub.offer(b.retained[t])
	}
	return e.id, nil
}

// remove closes and deregisters a subscription by ID. The subscription's
// backpressure losses are folded into the broker's cumulative drop
// counter so Stats keeps accounting for departed subscribers (the
// gateway disconnects slow SSE consumers; their drops must not vanish
// from /stats with them).
func (b *Broker) remove(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[id]
	if !ok {
		return
	}
	e.sub.shut()
	b.removedDrops += e.sub.Dropped()
	delete(b.entries, id)
	b.index.remove(e.pattern, id)
}

// Subscribe registers a pattern with a queue capacity (default 1024 when
// <= 0) and a drop policy. Retained messages matching the pattern are
// replayed into the new subscription immediately.
func (b *Broker) Subscribe(pattern string, capacity int, policy DropPolicy) (*Subscription, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	sub := &Subscription{Pattern: pattern, cap: capacity, policy: policy}
	id, err := b.register(pattern, sub)
	if err != nil {
		return nil, err
	}
	sub.ID = id
	return sub, nil
}

// Unsubscribe removes a subscription.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	b.remove(sub.ID)
}

// SetRetainedLimit caps how many distinct topics the broker retains.
// Once the cap is reached, messages on new topics are still delivered
// but not retained (existing topics keep updating). The middleware's
// own topic universe is closed and small, but a network-facing broker
// (the gateway's /publish) must not let remote clients grow the
// retained map without bound. n <= 0 means unlimited.
func (b *Broker) SetRetainedLimit(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retainedLimit = n
}

// retain stores a topic's latest message, honoring the retained-topic
// cap. Caller holds b.mu.
func (b *Broker) retain(m Message) {
	if b.retainedLimit > 0 {
		if _, ok := b.retained[m.Topic]; !ok && len(b.retained) >= b.retainedLimit {
			return
		}
	}
	b.retained[m.Topic] = m
}

// matchPool recycles the scratch slices Publish matches into, so a
// publish allocates no per-call match slice. Slices are returned to the
// pool emptied of entry pointers (a pooled slice must not pin departed
// subscribers).
var matchPool = sync.Pool{
	New: func() any { s := make([]*subEntry, 0, 16); return &s },
}

func putMatched(mp *[]*subEntry) {
	matched := *mp
	for i := range matched {
		matched[i] = nil
	}
	*mp = matched[:0]
	matchPool.Put(mp)
}

// Publish fans a message out to every matching subscription, retains it,
// and returns the number of subscriptions it reached. The message is
// stamped with the next offset and, when a log is attached, written
// through to it first — a message that cannot be made durable is not
// delivered.
func (b *Broker) Publish(m Message) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	mp := matchPool.Get().(*[]*subEntry)
	b.mu.Lock()
	if err := b.stamp(&m); err != nil {
		b.mu.Unlock()
		matchPool.Put(mp)
		return 0, err
	}
	b.published++
	b.retain(m)
	matched := b.index.match(m.Topic, *mp)
	b.deliveries += len(matched)
	b.mu.Unlock()

	for _, e := range matched {
		e.sub.offer(m)
	}
	n := len(matched)
	*mp = matched
	putMatched(mp)
	return n, nil
}

// stamp assigns the next offset and writes the message through to the
// log when one is attached. A durable publish also gets the shared
// encode cache: the payload JSON marshaled for the log is the same
// bytes every wire-facing subscriber (the gateway) will reuse, and the
// cache travels inside every fanned-out copy. Caller holds b.mu.
func (b *Broker) stamp(m *Message) error {
	m.Offset = b.nextOffset
	if b.log != nil {
		m.cache = &msgCache{}
		off, err := b.log.Append(recordOf(m))
		if err != nil {
			return err
		}
		if off != m.Offset {
			return fmt.Errorf("core: log assigned offset %d, broker expected %d", off, m.Offset)
		}
	}
	b.nextOffset++
	return nil
}

// PublishBatch publishes a batch of messages under a single index-lock
// acquisition, amortizing lock and matching overhead across the batch.
// It returns the total number of subscription deliveries. Validation
// happens up front: an invalid message fails the whole batch before
// anything is published.
func (b *Broker) PublishBatch(msgs []Message) (int, error) {
	for _, m := range msgs {
		if err := m.Validate(); err != nil {
			return 0, err
		}
	}
	if len(msgs) == 0 {
		return 0, nil
	}
	// Matches for the whole batch land in one pooled flat slice with
	// per-message end offsets — two bookkeeping slices per batch instead
	// of one match slice per message.
	mp := matchPool.Get().(*[]*subEntry)
	ends := make([]int, len(msgs))
	flat := *mp
	b.mu.Lock()
	for i := range msgs {
		// A write-through failure mid-batch aborts the batch: earlier
		// messages are already durable and retained (a restart replays
		// them) but nothing is fanned out — under a failing disk,
		// losing deliveries beats delivering what was never logged.
		if err := b.stamp(&msgs[i]); err != nil {
			b.mu.Unlock()
			*mp = flat
			putMatched(mp)
			return 0, err
		}
		b.published++
		b.retain(msgs[i])
		flat = b.index.match(msgs[i].Topic, flat)
		ends[i] = len(flat)
	}
	total := len(flat)
	b.deliveries += total
	b.mu.Unlock()

	start := 0
	for i, end := range ends {
		for _, e := range flat[start:end] {
			e.sub.offer(msgs[i])
		}
		start = end
	}
	*mp = flat
	putMatched(mp)
	return total, nil
}

// Stats returns current broker statistics across every subscription
// flavor, including at-least-once (ack) subscriptions and the
// accumulated drops of subscriptions that have since been removed.
func (b *Broker) Stats() BrokerStats {
	workers := 0
	if d := b.dispatcher(); d != nil {
		workers = d.workers
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	drops := b.removedDrops
	for _, e := range b.entries {
		drops += e.sub.Dropped()
	}
	return BrokerStats{
		Published:       b.published,
		Deliveries:      b.deliveries,
		Drops:           drops,
		Subscriptions:   len(b.entries),
		DispatchWorkers: workers,
	}
}

// Retained returns the retained message for a concrete topic.
func (b *Broker) Retained(topic string) (Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.retained[topic]
	return m, ok
}
