package core

import (
	"sort"
	"sync"
)

// DropPolicy says what a full subscriber queue does with a new message.
type DropPolicy int

// Drop policies.
const (
	// DropOldest evicts the oldest queued message (default: fresh data
	// beats stale data in a monitoring system).
	DropOldest DropPolicy = iota
	// DropNewest rejects the incoming message.
	DropNewest
)

// Subscription is one subscriber's bounded mailbox.
type Subscription struct {
	// ID is the broker-assigned identity.
	ID int
	// Pattern is the topic filter.
	Pattern string

	policy DropPolicy
	mu     sync.Mutex
	queue  []Message
	cap    int
	// dropped counts messages lost to backpressure.
	dropped int
	// delivered counts messages enqueued.
	delivered int
	closed    bool
}

// Poll removes and returns up to max queued messages (all when max <= 0).
func (s *Subscription) Poll(max int) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Message, n)
	copy(out, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	return out
}

// Pending returns the queue depth.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Dropped returns how many messages backpressure discarded.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Delivered returns how many messages were enqueued in total.
func (s *Subscription) Delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

func (s *Subscription) offer(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.cap {
		if s.policy == DropNewest {
			s.dropped++
			return
		}
		// DropOldest.
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.dropped++
	}
	s.queue = append(s.queue, m)
	s.delivered++
}

// BrokerStats summarizes broker activity.
type BrokerStats struct {
	Published     int
	Deliveries    int
	Drops         int
	Subscriptions int
}

// Broker is the application abstraction layer's pub/sub fabric. Delivery
// is synchronous fan-out into bounded per-subscriber queues; subscribers
// poll. This keeps the middleware deterministic under test while still
// exposing real backpressure semantics.
type Broker struct {
	mu         sync.RWMutex
	subs       map[int]*Subscription
	ackSubs    map[int]*AckSubscription
	nextID     int
	published  int
	deliveries int
	// retained keeps the last message per concrete topic so late
	// subscribers can catch up (MQTT-style retained messages).
	retained map[string]Message
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		subs:     make(map[int]*Subscription),
		retained: make(map[string]Message),
	}
}

// Subscribe registers a pattern with a queue capacity (default 1024 when
// <= 0) and a drop policy. Retained messages matching the pattern are
// replayed into the new subscription immediately.
func (b *Broker) Subscribe(pattern string, capacity int, policy DropPolicy) (*Subscription, error) {
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		capacity = 1024
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	sub := &Subscription{ID: b.nextID, Pattern: pattern, cap: capacity, policy: policy}
	b.subs[sub.ID] = sub

	// Replay retained messages in deterministic topic order.
	topics := make([]string, 0, len(b.retained))
	for t := range b.retained {
		if TopicMatch(pattern, t) {
			topics = append(topics, t)
		}
	}
	sort.Strings(topics)
	for _, t := range topics {
		sub.offer(b.retained[t])
	}
	return sub, nil
}

// Unsubscribe removes a subscription.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	delete(b.subs, sub.ID)
}

// Publish fans a message out to every matching subscription, retains it,
// and returns the number of subscriptions it reached.
func (b *Broker) Publish(m Message) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	b.mu.Lock()
	b.published++
	b.retained[m.Topic] = m
	// Snapshot matching subs under the read side of the lock.
	var matched []*Subscription
	for _, s := range b.subs {
		if TopicMatch(s.Pattern, m.Topic) {
			matched = append(matched, s)
		}
	}
	var matchedAck []*AckSubscription
	for _, s := range b.ackSubs {
		if TopicMatch(s.Pattern, m.Topic) {
			matchedAck = append(matchedAck, s)
		}
	}
	b.deliveries += len(matched) + len(matchedAck)
	b.mu.Unlock()

	for _, s := range matched {
		s.offer(m)
	}
	for _, s := range matchedAck {
		s.offer(m)
	}
	return len(matched) + len(matchedAck), nil
}

// Stats returns current broker statistics.
func (b *Broker) Stats() BrokerStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	drops := 0
	for _, s := range b.subs {
		drops += s.Dropped()
	}
	return BrokerStats{
		Published:     b.published,
		Deliveries:    b.deliveries,
		Drops:         drops,
		Subscriptions: len(b.subs),
	}
}

// Retained returns the retained message for a concrete topic.
func (b *Broker) Retained(topic string) (Message, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	m, ok := b.retained[topic]
	return m, ok
}
