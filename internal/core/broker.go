package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/eventlog"
)

// DropPolicy says what a full subscriber queue does with a new message.
type DropPolicy int

// Drop policies.
const (
	// DropOldest evicts the oldest queued message (default: fresh data
	// beats stale data in a monitoring system).
	DropOldest DropPolicy = iota
	// DropNewest rejects the incoming message.
	DropNewest
)

// subscriber is the behavior Publish/retain/replay needs from any
// subscription flavor. Subscription (at-most-once poll), AckSubscription
// (at-least-once fetch/ack) and handlerSub (push dispatch) all satisfy
// it, so fan-out, retained replay and stats accounting exist once.
type subscriber interface {
	offer(m Message)
	// offerRetained is offer for the retained replay at subscribe time:
	// it skips a message whose offset the mailbox already holds, because
	// a publish racing the subscription may deliver the same message
	// both live (through the fresh trie snapshot) and via the retained
	// stripes.
	offerRetained(m Message)
	shut()
	Dropped() int
}

// subEntry is one registered subscription in the broker's index.
type subEntry struct {
	id      int
	pattern string
	sub     subscriber
}

// Subscription is one subscriber's bounded mailbox. The queue is a ring
// buffer: DropOldest eviction overwrites the oldest slot in O(1) instead
// of shifting the whole queue, so a full mailbox (a slow SSE consumer at
// capacity 4096) prices an offer the same as an empty one.
type Subscription struct {
	// ID is the broker-assigned identity.
	ID int
	// Pattern is the topic filter.
	Pattern string

	policy DropPolicy
	mu     sync.Mutex
	// buf is the ring storage; it grows on demand up to cap. head is
	// the index of the oldest queued message, n the queued count.
	buf  []Message
	head int
	n    int
	cap  int
	// dropped counts messages lost to backpressure.
	dropped int
	// delivered counts messages enqueued.
	delivered int
	closed    bool
}

// at returns the ring slot index for the i-th queued message.
func (s *Subscription) at(i int) int {
	return (s.head + i) % len(s.buf)
}

// Poll removes and returns up to max queued messages (all when max <= 0).
func (s *Subscription) Poll(max int) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Message, n)
	for i := 0; i < n; i++ {
		j := s.at(i)
		out[i] = s.buf[j]
		s.buf[j] = Message{} // release payload/cache references
	}
	if n > 0 {
		s.head = s.at(n)
		s.n -= n
	}
	return out
}

// Pending returns the queue depth.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many messages backpressure discarded.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Delivered returns how many messages were enqueued in total.
func (s *Subscription) Delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

func (s *Subscription) offer(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offerLocked(m)
}

func (s *Subscription) offerLocked(m Message) {
	if s.closed {
		return
	}
	if s.n == s.cap {
		if s.policy == DropNewest {
			s.dropped++
			return
		}
		// DropOldest: the tail slot coincides with the head slot when
		// the ring is full — overwrite it and advance the head.
		s.buf[s.head] = m
		s.head = (s.head + 1) % len(s.buf)
		s.dropped++
		s.delivered++
		return
	}
	if s.n == len(s.buf) {
		grown := len(s.buf) * 2
		if grown == 0 {
			grown = 8
		}
		if grown > s.cap {
			grown = s.cap
		}
		next := make([]Message, grown)
		for i := 0; i < s.n; i++ {
			next[i] = s.buf[s.at(i)]
		}
		s.buf = next
		s.head = 0
	}
	s.buf[(s.head+s.n)%len(s.buf)] = m
	s.n++
	s.delivered++
}

// offerRetained enqueues a retained message unless the mailbox already
// holds that offset (the subscribe/publish race can route one message
// through both the live and the retained path).
func (s *Subscription) offerRetained(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if m.Offset != 0 {
		for i := 0; i < s.n; i++ {
			if s.buf[s.at(i)].Offset == m.Offset {
				return
			}
		}
	}
	s.offerLocked(m)
}

func (s *Subscription) shut() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// BrokerStats summarizes broker activity. The JSON tags are the wire
// shape of the gateway's /stats endpoint.
type BrokerStats struct {
	Published  int `json:"published"`
	Deliveries int `json:"deliveries"`
	// Drops totals backpressure losses across every subscription flavor,
	// including the at-least-once tier. It is cumulative: drops by
	// since-removed subscriptions stay counted.
	Drops int `json:"drops"`
	// Subscriptions counts all live registrations: plain, acknowledged
	// and push-handler subscriptions.
	Subscriptions int `json:"subscriptions"`
	// DispatchWorkers is the size of the push-mode worker pool, 0 when
	// the dispatcher is not running.
	DispatchWorkers int `json:"dispatch_workers"`
}

// retainStripes shards the retained-message map by topic hash so
// concurrent publishers on different topics update retained state
// without sharing a lock.
const retainStripes = 32

type retainStripe struct {
	mu sync.Mutex
	m  map[string]Message
}

// Broker is the application abstraction layer's pub/sub fabric. Delivery
// is synchronous fan-out into bounded per-subscriber queues; subscribers
// poll, fetch/ack, or receive pushes via the dispatcher.
//
// The publish hot path is lock-free with respect to broker state: the
// subscription index is an immutable trie snapshot loaded atomically,
// counters are atomics, retained messages live in hash-sharded stripes,
// and offset sequencing is delegated to the event log's own tiny
// critical section (or a bare atomic for in-memory brokers). Publishers
// therefore never wait on each other's fan-out, on subscription churn,
// or on /stats polls; see ARCHITECTURE.md, "Broker concurrency model".
type Broker struct {
	// index is the current subscription-trie snapshot (nil = empty).
	// Mutations (under subMu) build a new trie and swap the pointer;
	// Publish loads it without locks.
	//dewsvet:rcu
	index atomic.Pointer[trieNode]

	// subMu serializes subscription mutations and attach: entries,
	// nextID, and the index swap. The publish path never takes it.
	subMu   sync.Mutex
	entries map[int]*subEntry
	nextID  int

	published  atomic.Int64
	deliveries atomic.Int64
	// removedDrops accumulates the drop counts of unsubscribed
	// subscriptions so Stats stays cumulative.
	removedDrops atomic.Int64

	// seq assigns offsets for in-memory brokers (last assigned; first
	// publish gets 1). With a log attached the log is the sequencer and
	// seq stays untouched.
	seq atomic.Uint64
	// log, when set, receives a durable copy of every published message
	// before fan-out (write-through) and assigns its offsets.
	log atomic.Pointer[eventlog.Log]

	// retained keeps the last message per concrete topic so late
	// subscribers can catch up (MQTT-style retained messages), sharded
	// by topic hash. retainedCount tracks the distinct-topic total for
	// the cap check without a global lock.
	retained      [retainStripes]retainStripe
	retainedCount atomic.Int64
	// retainedLimit caps distinct retained topics (0 = unlimited).
	retainedLimit atomic.Int64

	dispatchMu sync.Mutex
	dispatch   *dispatcher
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	b := &Broker{entries: make(map[int]*subEntry)}
	for i := range b.retained {
		b.retained[i].m = make(map[string]Message)
	}
	return b
}

// registerEntry indexes the subscriber under subMu and returns the
// assigned ID. The trie swap publishes the subscription to concurrent
// publishers at the moment of the Store.
func (b *Broker) registerEntry(pattern string, sub subscriber) int {
	b.subMu.Lock()
	b.nextID++
	e := &subEntry{id: b.nextID, pattern: pattern, sub: sub}
	b.entries[e.id] = e
	b.index.Store(trieInsert(b.index.Load(), pattern, true, e))
	b.subMu.Unlock()
	return e.id
}

// register validates the pattern, indexes the subscriber, replays
// retained messages in deterministic topic order, and returns the
// assigned ID. All subscription flavors funnel through here.
//
// Ordering matters: the index swap happens before the stripes are read,
// while Publish retains before loading the index. Whatever the
// interleaving, a message concurrent with the subscribe is therefore
// seen on at least one of the two paths (both operations are atomics/
// mutexes, which Go's memory model orders sequentially consistently);
// the case where it arrives on both is collapsed by offerRetained's
// offset check.
func (b *Broker) register(pattern string, sub subscriber) (int, error) {
	if err := ValidatePattern(pattern); err != nil {
		return 0, err
	}
	id := b.registerEntry(pattern, sub)
	for _, m := range b.retainedMatches(pattern) {
		sub.offerRetained(m)
	}
	return id, nil
}

// retainedMatches collects the retained messages matching pattern,
// sorted by topic for deterministic replay order.
func (b *Broker) retainedMatches(pattern string) []Message {
	var out []Message
	for i := range b.retained {
		st := &b.retained[i]
		st.mu.Lock()
		for t, m := range st.m {
			if TopicMatch(pattern, t) {
				out = append(out, m)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}

// remove closes and deregisters a subscription by ID. The subscription's
// backpressure losses are folded into the broker's cumulative drop
// counter so Stats keeps accounting for departed subscribers (the
// gateway disconnects slow SSE consumers; their drops must not vanish
// from /stats with them). Publishers still holding the previous trie
// snapshot may offer to the closed mailbox; those offers are no-ops.
func (b *Broker) remove(id int) {
	b.subMu.Lock()
	e, ok := b.entries[id]
	if !ok {
		b.subMu.Unlock()
		return
	}
	delete(b.entries, id)
	b.index.Store(trieRemove(b.index.Load(), e.pattern, true, id))
	b.subMu.Unlock()
	e.sub.shut()
	b.removedDrops.Add(int64(e.sub.Dropped()))
}

// Subscribe registers a pattern with a queue capacity (default 1024 when
// <= 0) and a drop policy. Retained messages matching the pattern are
// replayed into the new subscription immediately.
func (b *Broker) Subscribe(pattern string, capacity int, policy DropPolicy) (*Subscription, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	sub := &Subscription{Pattern: pattern, cap: capacity, policy: policy}
	id, err := b.register(pattern, sub)
	if err != nil {
		return nil, err
	}
	sub.ID = id
	return sub, nil
}

// Unsubscribe removes a subscription.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	b.remove(sub.ID)
}

// SetRetainedLimit caps how many distinct topics the broker retains.
// Once the cap is reached, messages on new topics are still delivered
// but not retained (existing topics keep updating). The middleware's
// own topic universe is closed and small, but a network-facing broker
// (the gateway's /publish) must not let remote clients grow the
// retained map without bound. n <= 0 means unlimited.
func (b *Broker) SetRetainedLimit(n int) {
	b.retainedLimit.Store(int64(n))
}

// stripeFor hashes a topic (FNV-1a) to its retained stripe.
func (b *Broker) stripeFor(topic string) *retainStripe {
	h := uint32(2166136261)
	for i := 0; i < len(topic); i++ {
		h = (h ^ uint32(topic[i])) * 16777619
	}
	return &b.retained[h%retainStripes]
}

// retain stores a topic's latest message, honoring the retained-topic
// cap. Under concurrent publishers to the same topic the highest offset
// wins regardless of arrival order. The cap check reads the global
// count without a global lock, so simultaneous first-publishes to new
// topics in different stripes can overshoot the cap by at most the
// stripe count — the cap is an anti-abuse bound, not an exact quota.
func (b *Broker) retain(m *Message) {
	st := b.stripeFor(m.Topic)
	st.mu.Lock()
	cur, ok := st.m[m.Topic]
	switch {
	case !ok:
		if lim := b.retainedLimit.Load(); lim > 0 && b.retainedCount.Load() >= lim {
			st.mu.Unlock()
			return
		}
		b.retainedCount.Add(1)
		st.m[m.Topic] = *m
	case m.Offset > cur.Offset:
		st.m[m.Topic] = *m
	}
	st.mu.Unlock()
}

// matchPool recycles the scratch slices Publish matches into, so a
// publish allocates no per-call match slice. Slices are returned to the
// pool emptied of entry pointers (a pooled slice must not pin departed
// subscribers).
var matchPool = sync.Pool{
	New: func() any { s := make([]*subEntry, 0, 16); return &s },
}

func putMatched(mp *[]*subEntry) {
	matched := *mp
	for i := range matched {
		matched[i] = nil
	}
	*mp = matched[:0]
	matchPool.Put(mp)
}

// Publish fans a message out to every matching subscription, retains it,
// and returns the number of subscriptions it reached. The message is
// stamped with the next offset and, when a log is attached, written
// through to it first — a message that cannot be made durable is not
// delivered. The only lock a publish ever contends on is the log's own
// offset sequencer (and per-mailbox locks on fan-out): payload
// marshaling, record encoding, retained updates and trie matching all
// run outside any shared critical section.
//
//dewsvet:hotpath
func (b *Broker) Publish(m Message) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := b.stamp(&m); err != nil {
		return 0, err
	}
	b.published.Add(1)
	// Retain before loading the index: paired with register's
	// index-swap-then-stripe-read order, this guarantees a concurrent
	// subscriber sees the message on at least one path.
	b.retain(&m)
	mp := matchPool.Get().(*[]*subEntry)
	matched := trieMatch(b.index.Load(), m.Topic, true, *mp)
	b.deliveries.Add(int64(len(matched)))
	for _, e := range matched {
		e.sub.offer(m)
	}
	n := len(matched)
	*mp = matched
	putMatched(mp)
	return n, nil
}

// stamp assigns the message's offset: the log's sequencer for durable
// brokers (the append's offset is the broker offset — WAL order and
// offset order coincide by construction), a bare atomic otherwise. A
// durable publish also gets the shared encode cache: the payload JSON
// marshaled for the log is the same bytes every wire-facing subscriber
// (the gateway) will reuse, and the cache travels inside every
// fanned-out copy.
func (b *Broker) stamp(m *Message) error {
	l := b.log.Load()
	if l == nil {
		m.Offset = b.seq.Add(1)
		return nil
	}
	c := newMsgCache(m.Payload)
	off, err := l.Append(eventlog.Record{Topic: m.Topic, Time: m.Time, Payload: c.payload, Headers: m.Headers})
	if err != nil {
		return err
	}
	m.Offset = off
	m.cache = c
	return nil
}

// PublishBatch publishes a batch of messages, appending them to the log
// as one contiguous run under a single sequencer acquisition (payloads
// are marshaled and records encoded before the lock), then matching and
// fanning out with the same lock-free path as Publish. It returns the
// total number of subscription deliveries. Validation happens up front:
// an invalid message fails the whole batch before anything is published.
//
//dewsvet:hotpath
func (b *Broker) PublishBatch(msgs []Message) (int, error) {
	for _, m := range msgs {
		if err := m.Validate(); err != nil {
			return 0, err
		}
	}
	if len(msgs) == 0 {
		return 0, nil
	}
	if l := b.log.Load(); l != nil {
		recs := make([]eventlog.Record, len(msgs)) //dewsvet:hotalloc-ok one record slice amortized over the whole batch
		for i := range msgs {
			c := newMsgCache(msgs[i].Payload)
			msgs[i].cache = c
			recs[i] = eventlog.Record{Topic: msgs[i].Topic, Time: msgs[i].Time, Payload: c.payload, Headers: msgs[i].Headers}
		}
		first, n, err := l.AppendBatch(recs)
		for i := 0; i < n; i++ {
			msgs[i].Offset = first + uint64(i)
		}
		b.published.Add(int64(n))
		for i := 0; i < n; i++ {
			b.retain(&msgs[i])
		}
		if err != nil {
			// A write-through failure mid-batch aborts the batch: the
			// first n messages are already durable and retained (a
			// restart replays them) but nothing is fanned out — under a
			// failing disk, losing deliveries beats delivering what was
			// never logged.
			return 0, err
		}
	} else {
		last := b.seq.Add(uint64(len(msgs)))
		for i := range msgs {
			msgs[i].Offset = last - uint64(len(msgs)) + 1 + uint64(i)
		}
		b.published.Add(int64(len(msgs)))
		for i := range msgs {
			b.retain(&msgs[i])
		}
	}
	// Matches for the whole batch land in one pooled flat slice with
	// per-message end offsets — two bookkeeping slices per batch instead
	// of one match slice per message. One index load serves the batch.
	mp := matchPool.Get().(*[]*subEntry)
	ends := make([]int, len(msgs)) //dewsvet:hotalloc-ok one end-offset slice amortized over the whole batch
	flat := *mp
	root := b.index.Load()
	for i := range msgs {
		flat = trieMatch(root, msgs[i].Topic, true, flat)
		ends[i] = len(flat)
	}
	total := len(flat)
	b.deliveries.Add(int64(total))
	start := 0
	for i, end := range ends {
		for _, e := range flat[start:end] {
			e.sub.offer(msgs[i])
		}
		start = end
	}
	*mp = flat
	putMatched(mp)
	return total, nil
}

// Stats returns current broker statistics across every subscription
// flavor, including at-least-once (ack) subscriptions and the
// accumulated drops of subscriptions that have since been removed.
// Counters are atomics and the subscription table is read under subMu —
// a /stats poll never touches the publish hot path.
func (b *Broker) Stats() BrokerStats {
	workers := 0
	if d := b.dispatcher(); d != nil {
		workers = d.workers
	}
	b.subMu.Lock()
	drops := b.removedDrops.Load()
	subs := len(b.entries)
	for _, e := range b.entries {
		drops += int64(e.sub.Dropped())
	}
	b.subMu.Unlock()
	return BrokerStats{
		Published:       int(b.published.Load()),
		Deliveries:      int(b.deliveries.Load()),
		Drops:           int(drops),
		Subscriptions:   subs,
		DispatchWorkers: workers,
	}
}

// Retained returns the retained message for a concrete topic.
func (b *Broker) Retained(topic string) (Message, bool) {
	st := b.stripeFor(topic)
	st.mu.Lock()
	m, ok := st.m[topic]
	st.mu.Unlock()
	return m, ok
}
