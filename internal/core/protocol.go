package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/wsn"
)

// ReadingSource abstracts the cloud storage the interface protocol layer
// downloads from (§4.2.3). wsn.CloudStore satisfies it; a production
// deployment would put an HTTP client here.
type ReadingSource interface {
	// Download returns up to limit readings from cursor and the next
	// cursor (limit <= 0 means all).
	Download(cursor int, limit int) ([]wsn.RawReading, int, error)
}

var _ ReadingSource = (*wsn.CloudStore)(nil)

// defaultFetchParallelism bounds how many sources FetchAll downloads
// from at once when no explicit limit is configured.
const defaultFetchParallelism = 8

// ProtocolLayer is the interface protocol layer: it tracks a download
// cursor per source and hands batches of semi-processed readings upward.
// FetchAll downloads from every source concurrently (bounded by
// SetParallelism) while keeping the merged batch in deterministic
// sorted-source order.
type ProtocolLayer struct {
	mu      sync.Mutex
	sources map[string]ReadingSource
	cursors map[string]int
	// fetched counts readings pulled per source.
	fetched map[string]int
	// parallelism bounds concurrent downloads in FetchAll.
	parallelism int
}

// NewProtocolLayer returns an empty layer.
func NewProtocolLayer() *ProtocolLayer {
	return &ProtocolLayer{
		sources:     make(map[string]ReadingSource),
		cursors:     make(map[string]int),
		fetched:     make(map[string]int),
		parallelism: defaultFetchParallelism,
	}
}

// SetParallelism bounds the number of sources FetchAll downloads from
// concurrently. n <= 1 makes FetchAll strictly serial.
func (p *ProtocolLayer) SetParallelism(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = 1
	}
	p.parallelism = n
}

// AddSource registers a named reading source.
func (p *ProtocolLayer) AddSource(name string, src ReadingSource) error {
	if name == "" || src == nil {
		return fmt.Errorf("core: source needs a name and an implementation")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.sources[name]; exists {
		return fmt.Errorf("core: source %q already registered", name)
	}
	p.sources[name] = src
	return nil
}

// Fetch downloads up to limit new readings from one source, advancing its
// cursor.
func (p *ProtocolLayer) Fetch(name string, limit int) ([]wsn.RawReading, error) {
	p.mu.Lock()
	src, ok := p.sources[name]
	cursor := p.cursors[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown source %q", name)
	}
	batch, next, err := src.Download(cursor, limit)
	if err != nil {
		return nil, fmt.Errorf("core: download from %q: %w", name, err)
	}
	p.mu.Lock()
	p.cursors[name] = next
	p.fetched[name] += len(batch)
	p.mu.Unlock()
	return batch, nil
}

// FetchAll downloads up to limit readings from every source. Sources
// are fetched concurrently with bounded parallelism; the merged batch
// is assembled in sorted source-name order, so the result is
// byte-identical to a serial fetch. On failure the error from the first
// failing source in sorted order is returned (also deterministic),
// together with every successfully fetched batch: those sources'
// cursors have already advanced, so discarding their readings would
// lose them permanently. Callers should process the partial batch even
// when err != nil.
func (p *ProtocolLayer) FetchAll(limit int) ([]wsn.RawReading, error) {
	p.mu.Lock()
	names := make([]string, 0, len(p.sources))
	for n := range p.sources {
		names = append(names, n)
	}
	workers := p.parallelism
	p.mu.Unlock()
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	batches := make([][]wsn.RawReading, len(names))
	errs := make([]error, len(names))
	runBounded(len(names), workers, func(i int) {
		batches[i], errs[i] = p.Fetch(names[i], limit)
	})

	var out []wsn.RawReading
	var firstErr error
	for i := range names {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		out = append(out, batches[i]...)
	}
	return out, firstErr
}

// Fetched returns the total readings pulled from a source.
func (p *ProtocolLayer) Fetched(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fetched[name]
}
