package core

import "sync"

// runBounded invokes fn(i) for every i in [0, n) using at most workers
// goroutines, falling back to a plain loop when one worker suffices.
// fn must handle its own synchronization for any shared state beyond
// index-disjoint slice slots.
func runBounded(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
