package core

import (
	"fmt"
	"sort"
	"sync"
)

// Delivery is one message handed to an acknowledged subscriber. The
// subscriber must Ack the sequence number; unacked deliveries are
// returned to the queue by Redeliver (at-least-once semantics).
type Delivery struct {
	// Seq is the subscription-scoped delivery sequence number.
	Seq uint64
	// Message is the delivered envelope.
	Message Message
}

// AckSubscription is a bounded mailbox with manual acknowledgement: the
// middleware's at-least-once QoS tier for consumers that must not lose
// bulletins (e.g. the SMS channel). Messages move queue → in-flight on
// Fetch, disappear on Ack, and return to the queue head on Redeliver.
type AckSubscription struct {
	// ID is the broker-assigned identity.
	ID int
	// Pattern is the topic filter.
	Pattern string

	mu       sync.Mutex
	queue    []Delivery
	inflight map[uint64]Delivery
	capacity int
	seq      uint64
	dropped  int
	acked    int
	closed   bool
}

func (s *AckSubscription) offer(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	// Backpressure counts queue + in-flight: unacked work is still work.
	if len(s.queue)+len(s.inflight) >= s.capacity {
		s.dropped++
		return // at-least-once drops newest: losing old unacked silently would lie
	}
	s.seq++
	s.queue = append(s.queue, Delivery{Seq: s.seq, Message: m})
}

// offerRetained enqueues a retained message unless the mailbox (queued
// or in-flight) already holds that offset — the subscribe/publish race
// can route one message through both the live and the retained path,
// and the at-least-once tier must not turn that into a double delivery
// at subscribe time.
func (s *AckSubscription) offerRetained(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if m.Offset != 0 {
		for _, d := range s.queue {
			if d.Message.Offset == m.Offset {
				return
			}
		}
		for _, d := range s.inflight {
			if d.Message.Offset == m.Offset {
				return
			}
		}
	}
	if len(s.queue)+len(s.inflight) >= s.capacity {
		s.dropped++
		return
	}
	s.seq++
	s.queue = append(s.queue, Delivery{Seq: s.seq, Message: m})
}

func (s *AckSubscription) shut() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Fetch moves up to max messages (all when max <= 0) into the in-flight
// set and returns them.
func (s *AckSubscription) Fetch(max int) []Delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Delivery, n)
	copy(out, s.queue[:n])
	s.queue = append(s.queue[:0], s.queue[n:]...)
	if s.inflight == nil {
		s.inflight = make(map[uint64]Delivery)
	}
	for _, d := range out {
		s.inflight[d.Seq] = d
	}
	return out
}

// Ack acknowledges a delivery; unknown sequence numbers error (they
// indicate double-ack or ack-after-redeliver bugs in the consumer).
func (s *AckSubscription) Ack(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.inflight[seq]; !ok {
		return fmt.Errorf("core: ack of unknown delivery %d", seq)
	}
	delete(s.inflight, seq)
	s.acked++
	return nil
}

// Redeliver returns every in-flight delivery to the queue head in
// sequence order and reports how many moved.
func (s *AckSubscription) Redeliver() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.inflight) == 0 {
		return 0
	}
	back := make([]Delivery, 0, len(s.inflight))
	for _, d := range s.inflight {
		back = append(back, d)
	}
	sort.Slice(back, func(i, j int) bool { return back[i].Seq < back[j].Seq })
	s.queue = append(back, s.queue...)
	n := len(s.inflight)
	s.inflight = make(map[uint64]Delivery)
	return n
}

// Pending returns (queued, in-flight) depths.
func (s *AckSubscription) Pending() (queued, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), len(s.inflight)
}

// Acked returns the number of acknowledged deliveries.
func (s *AckSubscription) Acked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Capacity returns the mailbox bound (queued + in-flight).
func (s *AckSubscription) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity
}

// Dropped returns messages refused due to backpressure.
func (s *AckSubscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SubscribeAck registers an at-least-once subscription (capacity default
// 1024). Retained messages are replayed like for plain subscriptions.
func (b *Broker) SubscribeAck(pattern string, capacity int) (*AckSubscription, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	sub := &AckSubscription{Pattern: pattern, capacity: capacity}
	id, err := b.register(pattern, sub)
	if err != nil {
		return nil, err
	}
	sub.ID = id
	return sub, nil
}

// UnsubscribeAck removes an acknowledged subscription. In-flight and
// queued deliveries remain fetchable so a consumer can finish
// outstanding work; the mailbox just receives nothing new.
func (b *Broker) UnsubscribeAck(sub *AckSubscription) {
	if sub == nil {
		return
	}
	b.remove(sub.ID)
}
