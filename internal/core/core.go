package core
