package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cep"
	"repro/internal/ik"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Config configures the middleware facade.
type Config struct {
	// Ontology is the materialized unified ontology (required).
	Ontology *ontology.Ontology
	// Rules is the CEP rule set (sensor-derived + IK-derived).
	Rules []cep.Rule
	// GraphObservations controls whether annotated observations are also
	// materialized into the RDF data graph (costs memory; queries over
	// observations need it).
	GraphObservations bool
}

// IngestReport summarizes one ingest cycle.
type IngestReport struct {
	// Fetched is the number of raw readings pulled from sources.
	Fetched int
	// Annotated is the number successfully mediated.
	Annotated int
	// Failed is the number the mediator rejected.
	Failed int
	// Inferences is the number of CEP emissions.
	Inferences int
}

// Middleware is the assembled three-tier semantic middleware.
type Middleware struct {
	broker   *Broker
	segment  *Segment
	protocol *ProtocolLayer
	cfg      Config
	// ikCatalogue indexes indicator slugs for IK report publication.
	ikCatalogue map[string]ik.Indicator
	ikTracker   *ik.InformantTracker
}

// New assembles the middleware.
func New(cfg Config) (*Middleware, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("core: middleware needs an ontology")
	}
	seg, err := NewSegment(cfg.Ontology, cfg.Rules)
	if err != nil {
		return nil, err
	}
	return &Middleware{
		broker:      NewBroker(),
		segment:     seg,
		protocol:    NewProtocolLayer(),
		cfg:         cfg,
		ikCatalogue: ik.CatalogueBySlug(),
		ikTracker:   ik.NewInformantTracker(),
	}, nil
}

// Broker exposes the application abstraction layer.
func (m *Middleware) Broker() *Broker { return m.broker }

// Segment exposes the ontology segment layer.
func (m *Middleware) Segment() *Segment { return m.segment }

// Protocol exposes the interface protocol layer.
func (m *Middleware) Protocol() *ProtocolLayer { return m.protocol }

// IKTracker exposes the informant reliability tracker.
func (m *Middleware) IKTracker() *ik.InformantTracker { return m.ikTracker }

// Ingest runs one full cycle of Figure 2's integration framework:
// download semi-processed readings from every cloud source, mediate them
// against the unified ontology, publish the unified observations on the
// broker, feed the per-district CEP shards, and publish every inference.
func (m *Middleware) Ingest(limit int) (IngestReport, error) {
	var rep IngestReport
	raw, err := m.protocol.FetchAll(limit)
	if err != nil {
		return rep, err
	}
	rep.Fetched = len(raw)
	records, failed := m.segment.Annotator().AnnotateBatch(raw)
	rep.Annotated = len(records)
	rep.Failed = failed

	for _, rec := range records {
		district := districtSlug(rec.Feature)
		// 1. Publish the unified observation.
		topic := TopicObservation(district, rec.Property.LocalName())
		if _, err := m.broker.Publish(Message{
			Topic:   topic,
			Time:    rec.Time,
			Payload: rec,
			Headers: map[string]string{"unit": rec.Unit.LocalName()},
		}); err != nil {
			return rep, err
		}
		// 2. Materialize into the data graph if configured.
		if m.cfg.GraphObservations {
			if err := rec.ToGraph(m.segment.Graph()); err != nil {
				return rep, err
			}
		}
		// 3. Feed the CEP shard.
		eng, err := m.segment.CEPEngine(district)
		if err != nil {
			return rep, err
		}
		emitted, err := eng.Process(cep.Event{
			Type:       rec.Property.LocalName(),
			Time:       rec.Time,
			Value:      rec.Value,
			Confidence: rec.Quality,
			Key:        district,
		})
		if err != nil {
			// Out-of-order readings happen with lossy uplinks; skip, count
			// nothing, keep going.
			continue
		}
		if err := m.publishInferences(district, emitted); err != nil {
			return rep, err
		}
		rep.Inferences += len(emitted)
	}
	return rep, nil
}

// PublishIKReports injects indigenous-knowledge reports: each becomes an
// IK topic message and a CEP event on the district shard; inferences
// (IKDrySignal, IKDroughtWarning, ...) are published like sensor-derived
// ones.
func (m *Middleware) PublishIKReports(reports []ik.Report) (int, error) {
	events, err := ik.EventsFromReports(reports, m.ikCatalogue, m.ikTracker)
	if err != nil {
		return 0, err
	}
	inferences := 0
	for i, ev := range events {
		if _, err := m.broker.Publish(Message{
			Topic:   TopicIK(ev.Key, strings.TrimPrefix(ev.Type, "ik-")),
			Time:    ev.Time,
			Payload: reports[i],
		}); err != nil {
			return inferences, err
		}
		if m.cfg.GraphObservations {
			m.graphIKReport(reports[i], ev.Confidence)
		}
		eng, err := m.segment.CEPEngine(ev.Key)
		if err != nil {
			return inferences, err
		}
		emitted, err := eng.Process(ev)
		if err != nil {
			continue // out-of-order reports are dropped, not fatal
		}
		if err := m.publishInferences(ev.Key, emitted); err != nil {
			return inferences, err
		}
		inferences += len(emitted)
	}
	return inferences, nil
}

// publishInferences publishes CEP emissions and mirrors them into the
// data graph with provenance.
func (m *Middleware) publishInferences(district string, emitted []cep.Event) error {
	for _, ev := range emitted {
		if _, err := m.broker.Publish(Message{
			Topic:   TopicEvent(district, ev.Type),
			Time:    ev.Time,
			Payload: ev,
			Headers: map[string]string{
				"severity": ev.Attrs["severity"],
				"rule":     ev.Attrs["rule"],
			},
		}); err != nil {
			return err
		}
		if m.cfg.GraphObservations {
			m.graphInference(district, ev)
		}
	}
	return nil
}

// graphInference writes an inferred event as RDF: a node typed by the
// (ontology) event class when the emission name matches one, tagged with
// time, district, severity and confidence.
func (m *Middleware) graphInference(district string, ev cep.Event) {
	g := m.segment.Graph()
	node := rdf.NSOBS.IRI(fmt.Sprintf("inference/%s/%s/%d", district, ev.Type, ev.Time.Unix()))
	cls := rdf.NSDEWS.IRI(ev.Type)
	if !m.segment.Ontology().IsClass(cls) {
		cls = rdf.NSDEWS.IRI("EnvironmentalEvent")
	}
	g.MustAdd(rdf.T(node, rdf.RDFType, cls))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("atTime"),
		rdf.NewTypedLiteral(ev.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime)))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("confidence"), rdf.NewFloat(ev.Confidence)))
	if district != "" {
		g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("affectsRegion"), rdf.NSGEO.IRI(district)))
	}
	if sev := ev.Attrs["severity"]; sev != "" {
		g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("hasSeverity"), rdf.NSDEWS.IRI("dvi"+capitalize(sev))))
	}
}

// graphIKReport writes an IK report into the data graph: a node typed by
// the indicator's ontology class, linked to its informant (with the
// tracker's current reliability), district and time — so SPARQL can ask
// "which signs were reported where, by whom, how reliable" exactly like
// it asks about sensor observations.
func (m *Middleware) graphIKReport(r ik.Report, confidence float64) {
	ind, ok := m.ikCatalogue[r.Indicator]
	if !ok {
		return
	}
	g := m.segment.Graph()
	node := rdf.NSOBS.IRI(fmt.Sprintf("ik/%s/%s/%d", r.District, r.Indicator, r.Time.Unix()))
	g.MustAdd(rdf.T(node, rdf.RDFType, ind.Class))
	informant := rdf.NSIK.IRI("informant/" + r.Informant)
	g.MustAdd(rdf.T(node, rdf.NSIK.IRI("reportedBy"), informant))
	g.MustAdd(rdf.T(informant, rdf.RDFType, rdf.NSIK.IRI("Informant")))
	g.MustAdd(rdf.T(informant, rdf.NSIK.IRI("reliability"), rdf.NewFloat(m.ikTracker.Reliability(r.Informant))))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("atTime"),
		rdf.NewTypedLiteral(r.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime)))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("confidence"), rdf.NewFloat(confidence)))
	g.MustAdd(rdf.T(node, rdf.NSIK.IRI("strength"), rdf.NewFloat(r.Strength)))
	if r.District != "" {
		g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("affectsRegion"), rdf.NSGEO.IRI(r.District)))
	}
}

// districtSlug converts a feature IRI to a broker topic segment.
func districtSlug(feature rdf.IRI) string {
	if feature == "" {
		return "unknown"
	}
	return strings.ToLower(feature.LocalName())
}

// capitalize upper-cases the first ASCII letter ("watch" → "Watch").
func capitalize(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}
