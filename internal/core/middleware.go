package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cep"
	"repro/internal/ik"
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// Config configures the middleware facade.
type Config struct {
	// Ontology is the materialized unified ontology (required).
	Ontology *ontology.Ontology
	// Rules is the CEP rule set (sensor-derived + IK-derived).
	Rules []cep.Rule
	// GraphObservations controls whether annotated observations are also
	// materialized into the RDF data graph (costs memory; queries over
	// observations need it).
	GraphObservations bool
}

// IngestReport summarizes one ingest cycle.
type IngestReport struct {
	// Fetched is the number of raw readings pulled from sources.
	Fetched int
	// Annotated is the number successfully mediated.
	Annotated int
	// Failed is the number the mediator rejected.
	Failed int
	// Inferences is the number of CEP emissions.
	Inferences int
	// OutOfOrder is the number of events the CEP shards rejected for
	// arriving behind their shard's clock (lossy-uplink reordering).
	OutOfOrder int
}

// Middleware is the assembled three-tier semantic middleware.
type Middleware struct {
	broker   *Broker
	segment  *Segment
	protocol *ProtocolLayer
	cfg      Config
	// ikCatalogue indexes indicator slugs for IK report publication.
	ikCatalogue map[string]ik.Indicator
	ikTracker   *ik.InformantTracker
	// ikOutOfOrder totals IK events skipped as stale by the CEP shards.
	ikOutOfOrder atomic.Int64
	// scratch recycles the per-cycle ingest batch buffers (message and
	// district slices, the per-district CEP grouping) across cycles.
	// Overlapping cycles each check out their own scratch, so reuse is
	// safe under the same concurrency the CEP shard locks permit.
	scratch sync.Pool
	// unitHeaders interns the one-entry {"unit": u} header map per unit:
	// every observation on the same unit shares one immutable map
	// instead of allocating its own.
	unitHeaders sync.Map // string -> map[string]string
}

// ingestScratch is one cycle's reusable batch state.
type ingestScratch struct {
	msgs       []Message
	districts  []string
	byDistrict map[string][]cep.Event
}

func (m *Middleware) getScratch() *ingestScratch {
	if s, ok := m.scratch.Get().(*ingestScratch); ok {
		// Truncate, keeping capacity. Message values are copied into
		// subscriber queues during PublishBatch and CEP events are
		// consumed synchronously by the shards, so nothing aliases the
		// backing arrays after the previous cycle returned.
		s.msgs = s.msgs[:0]
		s.districts = s.districts[:0]
		for d, evs := range s.byDistrict {
			s.byDistrict[d] = evs[:0]
		}
		return s
	}
	return &ingestScratch{byDistrict: make(map[string][]cep.Event)}
}

// unitHeader returns the shared header map for a unit. The maps are
// never mutated after creation (everything downstream treats message
// headers as read-only).
func (m *Middleware) unitHeader(unit string) map[string]string {
	if h, ok := m.unitHeaders.Load(unit); ok {
		return h.(map[string]string)
	}
	h, _ := m.unitHeaders.LoadOrStore(unit, map[string]string{"unit": unit})
	return h.(map[string]string)
}

// New assembles the middleware.
func New(cfg Config) (*Middleware, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("core: middleware needs an ontology")
	}
	seg, err := NewSegment(cfg.Ontology, cfg.Rules)
	if err != nil {
		return nil, err
	}
	return &Middleware{
		broker:      NewBroker(),
		segment:     seg,
		protocol:    NewProtocolLayer(),
		cfg:         cfg,
		ikCatalogue: ik.CatalogueBySlug(),
		ikTracker:   ik.NewInformantTracker(),
	}, nil
}

// Broker exposes the application abstraction layer.
func (m *Middleware) Broker() *Broker { return m.broker }

// Segment exposes the ontology segment layer.
func (m *Middleware) Segment() *Segment { return m.segment }

// Protocol exposes the interface protocol layer.
func (m *Middleware) Protocol() *ProtocolLayer { return m.protocol }

// IKTracker exposes the informant reliability tracker.
func (m *Middleware) IKTracker() *ik.InformantTracker { return m.ikTracker }

// Ingest runs one full cycle of Figure 2's integration framework as a
// staged pipeline: download semi-processed readings from every cloud
// source (concurrently, via the protocol layer), mediate the whole
// batch against the unified ontology, batch-publish the unified
// observations on the broker, fan the events out to per-district CEP
// worker shards, and publish every inference in deterministic district
// order.
func (m *Middleware) Ingest(limit int) (IngestReport, error) {
	var rep IngestReport
	raw, fetchErr := m.protocol.FetchAll(limit)
	// A failing source must not discard the other sources' readings:
	// their cursors already advanced, so this is the only chance to
	// process them. Run the pipeline on what arrived, then report the
	// fetch error.
	if len(raw) == 0 && fetchErr != nil {
		return rep, fetchErr
	}
	rep.Fetched = len(raw)

	// Stage 1: batch mediation.
	records, failed := m.segment.Annotator().AnnotateBatch(raw)
	rep.Annotated = len(records)
	rep.Failed = failed

	// Stage 2: publish the unified observations in one batch (a single
	// broker lock acquisition instead of one per record). Batch slices
	// and the per-district grouping come from the cycle scratch pool and
	// are reused across cycles instead of reallocated.
	scratch := m.getScratch()
	defer m.scratch.Put(scratch)
	msgs := scratch.msgs
	districts := scratch.districts
	for _, rec := range records {
		d := districtSlug(rec.Feature)
		districts = append(districts, d)
		msgs = append(msgs, Message{
			Topic:   TopicObservation(d, rec.Property.LocalName()),
			Time:    rec.Time,
			Payload: rec,
			Headers: m.unitHeader(rec.Unit.LocalName()),
		})
	}
	scratch.msgs, scratch.districts = msgs, districts
	if _, err := m.broker.PublishBatch(msgs); err != nil {
		return rep, err
	}

	// Stage 3: materialize into the data graph if configured (serial:
	// the RDF graph is a single-writer structure).
	if m.cfg.GraphObservations {
		for _, rec := range records {
			if err := rec.ToGraph(m.segment.Graph()); err != nil {
				return rep, err
			}
		}
	}

	// Stage 4: CEP, fanned out to per-district shards. Arrival order is
	// preserved within each district. The grouping map and its event
	// slices are scratch — emptied, not freed, between cycles.
	byDistrict := scratch.byDistrict
	for i, rec := range records {
		byDistrict[districts[i]] = append(byDistrict[districts[i]], cep.Event{
			Type:       rec.Property.LocalName(),
			Time:       rec.Time,
			Value:      rec.Value,
			Confidence: rec.Quality,
			Key:        districts[i],
		})
	}
	inferences, outOfOrder, err := m.runCEPShards(byDistrict)
	if err != nil {
		return rep, err
	}
	rep.Inferences = inferences
	rep.OutOfOrder = outOfOrder
	return rep, fetchErr
}

// runCEPShards feeds each district's events through that district's CEP
// engine shard, one worker goroutine per shard (bounded by GOMAXPROCS),
// then publishes every emission in sorted district order so downstream
// consumers see a deterministic stream. It returns the total number of
// inferences and of skipped out-of-order events (lossy uplinks reorder;
// the serial path skipped them too, silently).
func (m *Middleware) runCEPShards(byDistrict map[string][]cep.Event) (inferences, outOfOrder int, err error) {
	if len(byDistrict) == 0 {
		return 0, 0, nil
	}
	order := make([]string, 0, len(byDistrict))
	for d, evs := range byDistrict {
		// Scratch maps keep keys from earlier cycles with emptied
		// slices; a district with no events this cycle has no shard
		// work.
		if len(evs) > 0 {
			order = append(order, d)
		}
	}
	if len(order) == 0 {
		return 0, 0, nil
	}
	sort.Strings(order)

	// Resolve every shard up front (engine construction can fail and the
	// segment lock serializes it anyway).
	engines := make([]*cep.Engine, len(order))
	for i, d := range order {
		eng, err := m.segment.CEPEngine(d)
		if err != nil {
			return 0, 0, err
		}
		engines[i] = eng
	}

	emittedBy := make([][]cep.Event, len(order))
	skippedBy := make([]int, len(order))
	errBy := make([]error, len(order))
	runBounded(len(order), runtime.GOMAXPROCS(0), func(i int) {
		// Serialize against overlapping cycles: the shard's engine is a
		// single-goroutine structure.
		l := m.segment.cepShardLock(order[i])
		l.Lock()
		emittedBy[i], skippedBy[i], errBy[i] = processShard(engines[i], byDistrict[order[i]])
		l.Unlock()
	})

	// Publish every shard's emissions — including partial ones from a
	// failing shard — before surfacing the first error: the engines'
	// clocks have advanced and the events are consumed, so an emission
	// not published here is lost for good.
	var firstErr error
	for i, d := range order {
		if errBy[i] != nil && firstErr == nil {
			firstErr = errBy[i]
		}
		if err := m.publishInferences(d, emittedBy[i]); err != nil {
			return inferences, outOfOrder, err
		}
		inferences += len(emittedBy[i])
		outOfOrder += skippedBy[i]
	}
	return inferences, outOfOrder, firstErr
}

// processShard feeds one shard's events through its engine in arrival
// order; the caller holds the shard's lock. Out-of-order events (lossy
// uplinks reorder) are skipped and counted; any other engine error —
// invalid events, rule-chain cycles — is a configuration or data bug
// and aborts the shard.
func processShard(eng *cep.Engine, events []cep.Event) (emitted []cep.Event, skipped int, err error) {
	for _, ev := range events {
		out, perr := eng.Process(ev)
		if perr != nil {
			if errors.Is(perr, cep.ErrOutOfOrder) {
				skipped++
				continue
			}
			return emitted, skipped, perr
		}
		emitted = append(emitted, out...)
	}
	return emitted, skipped, nil
}

// PublishIKReports injects indigenous-knowledge reports: each becomes an
// IK topic message and a CEP event on the district shard; inferences
// (IKDrySignal, IKDroughtWarning, ...) are published like sensor-derived
// ones. Events are time-sorted before hitting the shards; each report
// rides along its own event (paired, so payloads and graph entries stay
// attached to the right report after the sort).
func (m *Middleware) PublishIKReports(reports []ik.Report) (int, error) {
	paired, err := ik.PairedEventsFromReports(reports, m.ikCatalogue, m.ikTracker)
	if err != nil {
		return 0, err
	}

	// Stage 1: batch-publish the IK report messages.
	msgs := make([]Message, len(paired))
	for i, p := range paired {
		msgs[i] = Message{
			Topic:   TopicIK(p.Event.Key, strings.TrimPrefix(p.Event.Type, "ik-")),
			Time:    p.Event.Time,
			Payload: p.Report,
		}
	}
	if _, err := m.broker.PublishBatch(msgs); err != nil {
		return 0, err
	}

	// Stage 2: graph materialization (serial, single-writer graph).
	if m.cfg.GraphObservations {
		for _, p := range paired {
			m.graphIKReport(p.Report, p.Event.Confidence)
		}
	}

	// Stage 3: per-district CEP shards, as in Ingest.
	byDistrict := make(map[string][]cep.Event)
	for _, p := range paired {
		byDistrict[p.Event.Key] = append(byDistrict[p.Event.Key], p.Event)
	}
	inferences, outOfOrder, err := m.runCEPShards(byDistrict)
	m.ikOutOfOrder.Add(int64(outOfOrder))
	return inferences, err
}

// IKOutOfOrder returns the cumulative count of IK report events skipped
// for arriving behind their district shard's clock — the IK-side
// counterpart of IngestReport.OutOfOrder, kept as a running total
// because PublishIKReports' signature predates the counter.
func (m *Middleware) IKOutOfOrder() int64 { return m.ikOutOfOrder.Load() }

// publishInferences batch-publishes CEP emissions and mirrors them into
// the data graph with provenance.
func (m *Middleware) publishInferences(district string, emitted []cep.Event) error {
	if len(emitted) == 0 {
		return nil
	}
	msgs := make([]Message, len(emitted))
	for i, ev := range emitted {
		msgs[i] = Message{
			Topic:   TopicEvent(district, ev.Type),
			Time:    ev.Time,
			Payload: ev,
			Headers: map[string]string{
				"severity": ev.Attrs["severity"],
				"rule":     ev.Attrs["rule"],
			},
		}
	}
	if _, err := m.broker.PublishBatch(msgs); err != nil {
		return err
	}
	if m.cfg.GraphObservations {
		for _, ev := range emitted {
			m.graphInference(district, ev)
		}
	}
	return nil
}

// graphInference writes an inferred event as RDF: a node typed by the
// (ontology) event class when the emission name matches one, tagged with
// time, district, severity and confidence.
func (m *Middleware) graphInference(district string, ev cep.Event) {
	g := m.segment.Graph()
	node := rdf.NSOBS.IRI(fmt.Sprintf("inference/%s/%s/%d", district, ev.Type, ev.Time.Unix()))
	cls := rdf.NSDEWS.IRI(ev.Type)
	if !m.segment.Ontology().IsClass(cls) {
		cls = rdf.NSDEWS.IRI("EnvironmentalEvent")
	}
	g.MustAdd(rdf.T(node, rdf.RDFType, cls))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("atTime"),
		rdf.NewTypedLiteral(ev.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime)))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("confidence"), rdf.NewFloat(ev.Confidence)))
	if district != "" {
		g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("affectsRegion"), rdf.NSGEO.IRI(district)))
	}
	if sev := ev.Attrs["severity"]; sev != "" {
		g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("hasSeverity"), rdf.NSDEWS.IRI("dvi"+capitalize(sev))))
	}
}

// graphIKReport writes an IK report into the data graph: a node typed by
// the indicator's ontology class, linked to its informant (with the
// tracker's current reliability), district and time — so SPARQL can ask
// "which signs were reported where, by whom, how reliable" exactly like
// it asks about sensor observations.
func (m *Middleware) graphIKReport(r ik.Report, confidence float64) {
	ind, ok := m.ikCatalogue[r.Indicator]
	if !ok {
		return
	}
	g := m.segment.Graph()
	node := rdf.NSOBS.IRI(fmt.Sprintf("ik/%s/%s/%d", r.District, r.Indicator, r.Time.Unix()))
	g.MustAdd(rdf.T(node, rdf.RDFType, ind.Class))
	informant := rdf.NSIK.IRI("informant/" + r.Informant)
	g.MustAdd(rdf.T(node, rdf.NSIK.IRI("reportedBy"), informant))
	g.MustAdd(rdf.T(informant, rdf.RDFType, rdf.NSIK.IRI("Informant")))
	g.MustAdd(rdf.T(informant, rdf.NSIK.IRI("reliability"), rdf.NewFloat(m.ikTracker.Reliability(r.Informant))))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("atTime"),
		rdf.NewTypedLiteral(r.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime)))
	g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("confidence"), rdf.NewFloat(confidence)))
	g.MustAdd(rdf.T(node, rdf.NSIK.IRI("strength"), rdf.NewFloat(r.Strength)))
	if r.District != "" {
		g.MustAdd(rdf.T(node, rdf.NSDEWS.IRI("affectsRegion"), rdf.NSGEO.IRI(r.District)))
	}
}

// districtSlug converts a feature IRI to a broker topic segment.
func districtSlug(feature rdf.IRI) string {
	if feature == "" {
		return "unknown"
	}
	return strings.ToLower(feature.LocalName())
}

// capitalize upper-cases the first ASCII letter ("watch" → "Watch").
func capitalize(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}
