package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/ik"
	"repro/internal/wsn"
)

// newSourceWithNodes returns a cloud store holding n readings whose
// node IDs are prefixed with the source name.
func newSourceWithNodes(name string, n int) *wsn.CloudStore {
	cloud := wsn.NewCloudStore()
	now := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]wsn.RawReading, n)
	for i := range batch {
		batch[i] = wsn.RawReading{
			NodeID: fmt.Sprintf("%s-%d", name, i),
			Time:   now.Add(time.Duration(i) * time.Minute),
		}
	}
	cloud.Upload(batch)
	return cloud
}

// TestPublishIKReportsPairsReportsWithEvents is the regression test for
// the report/event misalignment bug: events are time-sorted before
// publication, and the published payload (and graph entry) must follow
// each event's own report — not the report that happened to share its
// slice index. Reports are injected deliberately out of time order with
// distinct indicators so any misalignment is visible on the topic.
func TestPublishIKReportsPairsReportsWithEvents(t *testing.T) {
	m := buildMiddleware(t)
	sub, err := m.Broker().Subscribe("ik/#", 100, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC)
	// Newest first: sorting reverses the slice order.
	reports := []ik.Report{
		{Informant: "elder-c", Indicator: "moon-halo", District: "xhariep",
			Time: base.AddDate(0, 0, 20), Strength: 0.9},
		{Informant: "elder-b", Indicator: "acacia-early-bloom", District: "mangaung",
			Time: base.AddDate(0, 0, 10), Strength: 0.7},
		{Informant: "elder-a", Indicator: "mutiga-flowering", District: "xhariep",
			Time: base, Strength: 0.8},
	}
	if _, err := m.PublishIKReports(reports); err != nil {
		t.Fatal(err)
	}
	msgs := sub.Poll(0)
	if len(msgs) != len(reports) {
		t.Fatalf("published %d, want %d", len(msgs), len(reports))
	}
	for _, msg := range msgs {
		r, ok := msg.Payload.(ik.Report)
		if !ok {
			t.Fatalf("payload = %#v", msg.Payload)
		}
		segs := strings.Split(msg.Topic, "/")
		if len(segs) != 3 {
			t.Fatalf("topic = %q", msg.Topic)
		}
		if segs[1] != r.District {
			t.Errorf("topic %q carries report for district %q", msg.Topic, r.District)
		}
		if segs[2] != r.Indicator {
			t.Errorf("topic %q carries report for indicator %q (misaligned pair)", msg.Topic, r.Indicator)
		}
		if !msg.Time.Equal(r.Time) {
			t.Errorf("message time %v != report time %v", msg.Time, r.Time)
		}
	}
}

// TestIngestDeterministicMergeOrder verifies the parallel protocol
// fetch preserves the serial merge contract: readings appear in sorted
// source-name order, sources' internal order intact.
func TestIngestDeterministicMergeOrder(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		p := NewProtocolLayer()
		p.SetParallelism(parallelism)
		names := []string{"delta", "alpha", "charlie", "bravo"}
		for _, n := range names {
			cloud := newSourceWithNodes(n, 5)
			if err := p.AddSource(n, cloud); err != nil {
				t.Fatal(err)
			}
		}
		all, err := p.FetchAll(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 20 {
			t.Fatalf("fetched %d, want 20", len(all))
		}
		want := []string{"alpha", "bravo", "charlie", "delta"}
		for i, r := range all {
			src := want[i/5]
			if !strings.HasPrefix(r.NodeID, src+"-") {
				t.Fatalf("parallelism=%d: position %d holds %q, want source %q first",
					parallelism, i, r.NodeID, src)
			}
		}
	}
}

// failingSource always errors.
type failingSource struct{}

func (failingSource) Download(cursor, limit int) ([]wsn.RawReading, int, error) {
	return nil, cursor, fmt.Errorf("synthetic outage")
}

// TestFetchAllPartialOnSourceFailure pins the salvage contract: a
// failing source must not discard the other sources' readings, whose
// cursors have already advanced past them.
func TestFetchAllPartialOnSourceFailure(t *testing.T) {
	p := NewProtocolLayer()
	if err := p.AddSource("alpha", newSourceWithNodes("alpha", 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource("bravo", failingSource{}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource("charlie", newSourceWithNodes("charlie", 2)); err != nil {
		t.Fatal(err)
	}
	got, err := p.FetchAll(0)
	if err == nil {
		t.Fatal("failing source must surface its error")
	}
	if len(got) != 5 {
		t.Fatalf("salvaged %d readings, want 5 (alpha+charlie)", len(got))
	}
	// The healthy sources' cursors advanced; only the broken source
	// retries next cycle.
	again, err := p.FetchAll(0)
	if err == nil || len(again) != 0 {
		t.Fatalf("second fetch = %d readings, err=%v", len(again), err)
	}
}
