package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// collectTopics publishes one message per topic and returns which ones
// the subscription received.
func deliveredTopics(t *testing.T, b *Broker, sub *Subscription, topics []string) []string {
	t.Helper()
	for _, topic := range topics {
		if _, err := b.Publish(Message{Topic: topic, Payload: topic}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, m := range sub.Poll(0) {
		got = append(got, m.Topic)
	}
	sort.Strings(got)
	return got
}

func TestBrokerWildcardEdgeCases(t *testing.T) {
	topics := []string{"a", "a/b", "a/b/c", "x", "x/y"}
	cases := []struct {
		pattern string
		want    []string
	}{
		// '#' at the root matches every topic.
		{"#", []string{"a", "a/b", "a/b/c", "x", "x/y"}},
		// '+' as the whole pattern matches single-segment topics only.
		{"+", []string{"a", "x"}},
		// '+' in the first segment.
		{"+/b", []string{"a/b"}},
		// '+' in the last segment.
		{"a/+", []string{"a/b"}},
		// '+' chains.
		{"+/+", []string{"a/b", "x/y"}},
		// '#' matches the parent level itself (MQTT semantics).
		{"a/#", []string{"a", "a/b", "a/b/c"}},
		// mixed wildcard forms.
		{"+/b/#", []string{"a/b", "a/b/c"}},
	}
	for _, c := range cases {
		b := NewBroker()
		sub, err := b.Subscribe(c.pattern, 64, DropOldest)
		if err != nil {
			t.Fatalf("Subscribe(%q): %v", c.pattern, err)
		}
		got := deliveredTopics(t, b, sub, topics)
		want := append([]string(nil), c.want...)
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("pattern %q delivered %v, want %v", c.pattern, got, want)
		}
	}
}

func TestBrokerRejectsEmptySegments(t *testing.T) {
	b := NewBroker()
	for _, p := range []string{"", "/", "a//b", "/a", "a/"} {
		if _, err := b.Subscribe(p, 8, DropOldest); err == nil {
			t.Errorf("Subscribe(%q) should fail", p)
		}
		if _, err := b.SubscribeAck(p, 8); err == nil {
			t.Errorf("SubscribeAck(%q) should fail", p)
		}
	}
}

// TestBrokerIndexOverlap checks that overlapping patterns each receive
// the message exactly once through the trie.
func TestBrokerIndexOverlap(t *testing.T) {
	b := NewBroker()
	patterns := []string{"obs/#", "obs/+/Rainfall", "obs/mangaung/#", "obs/mangaung/Rainfall", "#"}
	subs := make([]*Subscription, len(patterns))
	for i, p := range patterns {
		var err error
		subs[i], err = b.Subscribe(p, 8, DropOldest)
		if err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Publish(Message{Topic: "obs/mangaung/Rainfall", Payload: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(patterns) {
		t.Fatalf("matched %d, want %d", n, len(patterns))
	}
	for i, s := range subs {
		if got := len(s.Poll(0)); got != 1 {
			t.Errorf("pattern %q received %d messages, want 1", patterns[i], got)
		}
	}
}

// TestBrokerIndexUnsubscribePrunes verifies removal actually detaches
// the pattern from the index (no ghost deliveries, no leaked branches).
func TestBrokerIndexUnsubscribePrunes(t *testing.T) {
	b := NewBroker()
	s1, _ := b.Subscribe("deep/a/b/c/#", 8, DropOldest)
	s2, _ := b.Subscribe("deep/a/+/c/d", 8, DropOldest)
	b.Unsubscribe(s1)
	n, err := b.Publish(Message{Topic: "deep/a/b/c/d", Payload: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("matched %d after unsubscribe, want 1", n)
	}
	if s1.Pending() != 0 {
		t.Error("unsubscribed subscription got a delivery")
	}
	if len(s2.Poll(0)) != 1 {
		t.Error("surviving subscription missed the delivery")
	}
	b.Unsubscribe(s2)
	if b.index.Load() != nil {
		t.Error("index not pruned after every unsubscribe (empty tree must collapse to nil)")
	}
}

func TestBrokerStatsIncludesAckTier(t *testing.T) {
	b := NewBroker()
	plain, _ := b.Subscribe("x/#", 1, DropNewest)
	acked, _ := b.SubscribeAck("x/#", 1)
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(Message{Topic: "x/t", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.Subscriptions != 2 {
		t.Errorf("Subscriptions = %d, want 2 (ack tier must be counted)", st.Subscriptions)
	}
	// Each queue held 1 and refused 2.
	if plain.Dropped() != 2 || acked.Dropped() != 2 {
		t.Fatalf("per-sub drops = %d/%d", plain.Dropped(), acked.Dropped())
	}
	if st.Drops != 4 {
		t.Errorf("Stats.Drops = %d, want 4 (ack drops must be visible)", st.Drops)
	}
	if st.Deliveries != 6 {
		t.Errorf("Deliveries = %d, want 6", st.Deliveries)
	}
}

// TestRedeliverAfterUnsubscribe pins the contract: unsubscribing an ack
// subscription stops new deliveries, but queued and in-flight work stays
// fetchable so a consumer can finish what it started.
func TestRedeliverAfterUnsubscribe(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("x/#", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(Message{Topic: "x/t", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	ds := sub.Fetch(2) // two in flight, one queued
	if len(ds) != 2 {
		t.Fatalf("fetched %d", len(ds))
	}
	b.UnsubscribeAck(sub)
	// New publishes no longer reach the mailbox.
	if _, err := b.Publish(Message{Topic: "x/t", Payload: 99}); err != nil {
		t.Fatal(err)
	}
	if q, infl := sub.Pending(); q != 1 || infl != 2 {
		t.Fatalf("pending after unsubscribe = %d/%d, want 1/2", q, infl)
	}
	// Redeliver still returns the in-flight work to the queue head.
	if n := sub.Redeliver(); n != 2 {
		t.Fatalf("redelivered %d, want 2", n)
	}
	rest := sub.Fetch(0)
	if len(rest) != 3 {
		t.Fatalf("drained %d, want 3", len(rest))
	}
	for _, d := range rest {
		if d.Message.Payload == 99 {
			t.Error("message published after unsubscribe leaked into the mailbox")
		}
		if err := sub.Ack(d.Seq); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublishBatch(t *testing.T) {
	b := NewBroker()
	sub, _ := b.Subscribe("obs/#", 64, DropOldest)
	msgs := []Message{
		{Topic: "obs/a/Rainfall", Payload: 1},
		{Topic: "obs/b/Rainfall", Payload: 2},
		{Topic: "other/x", Payload: 3},
	}
	n, err := b.PublishBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deliveries = %d, want 2", n)
	}
	got := sub.Poll(0)
	if len(got) != 2 || got[0].Payload != 1 || got[1].Payload != 2 {
		t.Fatalf("poll = %v", got)
	}
	// Retained state reflects every message in the batch.
	if _, ok := b.Retained("other/x"); !ok {
		t.Error("batch publish must retain non-matching topics too")
	}
	st := b.Stats()
	if st.Published != 3 || st.Deliveries != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Invalid message fails the whole batch before any delivery.
	if _, err := b.PublishBatch([]Message{{Topic: "ok/t"}, {Topic: "bad//t"}}); err == nil {
		t.Fatal("invalid message in batch should fail")
	}
	if _, ok := b.Retained("ok/t"); ok {
		t.Error("failed batch must not publish anything")
	}
	if n, err := b.PublishBatch(nil); n != 0 || err != nil {
		t.Errorf("empty batch = %d, %v", n, err)
	}
}

func TestDispatcherPush(t *testing.T) {
	b := NewBroker()
	b.StartDispatch(4)
	defer b.StopDispatch()

	var mu sync.Mutex
	seen := make(map[string][]int)
	sub, err := b.SubscribeHandler("obs/+/Rainfall", 1024, DropOldest, func(m Message) {
		mu.Lock()
		seen[m.Topic] = append(seen[m.Topic], m.Payload.(int))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const perTopic = 200
	topics := []string{"obs/a/Rainfall", "obs/b/Rainfall", "obs/c/Rainfall"}
	var wg sync.WaitGroup
	for _, topic := range topics {
		wg.Add(1)
		go func(topic string) {
			defer wg.Done()
			for i := 0; i < perTopic; i++ {
				if _, err := b.Publish(Message{Topic: topic, Payload: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(topic)
	}
	wg.Wait()
	b.DrainDispatch()
	mu.Lock()
	defer mu.Unlock()
	for _, topic := range topics {
		if len(seen[topic]) != perTopic {
			t.Fatalf("topic %s handled %d, want %d", topic, len(seen[topic]), perTopic)
		}
		// Per-subscription handler invocations preserve publish order.
		for i, v := range seen[topic] {
			if v != i {
				t.Fatalf("topic %s out of order at %d: %v...", topic, i, seen[topic][:i+1])
			}
		}
	}
	if sub.Pending() != 0 {
		t.Errorf("mailbox still holds %d after drain", sub.Pending())
	}
}

func TestDispatcherRetainedReplayAndRestart(t *testing.T) {
	b := NewBroker()
	if _, err := b.Publish(Message{Topic: "obs/a/Rainfall", Payload: 7}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Message, 16)
	if _, err := b.SubscribeHandler("obs/#", 16, DropOldest, func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	b.DrainDispatch()
	select {
	case m := <-got:
		if m.Payload != 7 {
			t.Fatalf("replayed payload = %v", m.Payload)
		}
	default:
		t.Fatal("retained message not pushed to handler")
	}

	// Stop the pool, accumulate a backlog, restart: backlog must flow.
	b.StopDispatch()
	if _, err := b.Publish(Message{Topic: "obs/b/Rainfall", Payload: 8}); err != nil {
		t.Fatal(err)
	}
	b.StartDispatch(2)
	b.DrainDispatch()
	b.StopDispatch()
	select {
	case m := <-got:
		if m.Payload != 8 {
			t.Fatalf("backlog payload = %v", m.Payload)
		}
	default:
		t.Fatal("backlog not dispatched after restart")
	}
}
