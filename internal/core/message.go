package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// cutSeg splits off the next '/'-separated segment of s without
// allocating: seg is the leading segment, rest is everything after the
// first '/', and more reports whether rest holds further segments.
// Iterating cutSeg until !more yields exactly strings.Split(s, "/").
func cutSeg(s string) (seg, rest string, more bool) {
	return strings.Cut(s, "/")
}

// Message is the envelope circulating on the application abstraction
// layer.
type Message struct {
	// Offset is the broker-assigned monotonic sequence number (1-based,
	// assigned on Publish; 0 means the message never passed through a
	// broker). With an event log attached the offset is durable across
	// restarts and doubles as the replay/resume cursor — the gateway's
	// SSE id: field carries it.
	Offset uint64
	// Topic is a '/'-separated hierarchical subject, e.g.
	// "obs/mangaung/Rainfall" or "event/xhariep/DroughtWarning".
	Topic string
	// Time is the event time of the payload.
	Time time.Time
	// Payload carries the typed body (ssn.Record, cep.Event, ...).
	Payload any
	// Headers carries string metadata.
	Headers map[string]string

	// cache, when non-nil, carries lazily built wire encodings shared by
	// every copy of this message: the broker allocates one cache per
	// durable publish before fan-out, so the payload JSON is marshaled
	// once for the event log and reused by every subscriber that needs
	// wire bytes (the gateway's SSE frames), instead of once per
	// subscriber.
	cache *msgCache
}

// msgCache holds the lazily built wire encodings of one published
// message. All copies of the message share the pointer; the mutex makes
// concurrent renders (many SSE pumps draining the same publish) build
// each encoding exactly once. Because the pointer is shared by every
// copy, only this file's once-only builders (newMsgCache, PayloadJSON,
// SharedFrame — all under mu after construction) may write its fields.
//
//dewsvet:immutable
type msgCache struct {
	mu sync.Mutex
	// payload is the payload marshaled as JSON.
	payload []byte
	// frame is an opaque caller-rendered frame (the gateway stores the
	// complete SSE event bytes here).
	frame []byte
	// scratch gives short scalar encodings a home inside the cache's own
	// allocation: the broker encodes into scratch[:0], so a typical
	// sensor publish (a float) costs one allocation — the cache — not a
	// cache plus a payload slice. 24 bytes covers every float64 and
	// int64 rendering.
	scratch [24]byte
}

// newMsgCache builds the shared encode cache for one durable publish,
// rendering the payload JSON into the cache's own scratch allocation —
// a scalar payload costs one allocation (the cache), not two.
func newMsgCache(payload any) *msgCache {
	c := &msgCache{}
	c.payload = appendPayload(c.scratch[:0], payload)
	return c
}

// marshalPayload renders a payload as JSON. Payloads that do not marshal
// (channels, funcs — nothing the system publishes) degrade to their
// string rendering rather than failing the caller. Scalar payloads —
// the bulk of sensor traffic — take a reflection-free path that emits
// byte-identical output to encoding/json, which matters because the
// durable publish path marshals every payload before the WAL append.
func marshalPayload(payload any) []byte {
	return appendPayload(nil, payload)
}

// appendPayload appends the JSON rendering of payload to dst (see
// marshalPayload). Scalar fast paths reuse dst's capacity — the broker
// passes a scratch buffer living inside the message's encode cache —
// while the reflection fallback appends whatever encoding/json built.
func appendPayload(dst []byte, payload any) []byte {
	switch v := payload.(type) {
	case nil:
		return append(dst, "null"...)
	case bool:
		if v {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case int:
		return strconv.AppendInt(dst, int64(v), 10)
	case int64:
		return strconv.AppendInt(dst, v, 10)
	case uint32:
		return strconv.AppendUint(dst, uint64(v), 10)
	case float64:
		if b, ok := appendJSONFloat(dst, v); ok {
			return b
		}
	case string:
		if b, ok := appendJSONString(dst, v); ok {
			return b
		}
	}
	b, err := json.Marshal(payload)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(payload))
	}
	return append(dst, b...)
}

// appendJSONFloat appends f exactly as encoding/json renders a float64
// (shortest form, 'e' only outside [1e-6, 1e21), exponent digits
// unpadded). NaN and infinities report !ok — encoding/json rejects
// them, so they take the fallback path and degrade to a string.
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// appendJSONString appends s as a JSON string when no character needs
// escaping (encoding/json escapes control characters, '"', '\\', and —
// for HTML safety — '<', '>', '&'; multi-byte UTF-8 passes through
// unescaped unless invalid). Anything suspicious reports !ok and falls
// back to encoding/json.
func appendJSONString(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return dst, false
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"'), true
}

// PayloadJSON returns the message payload marshaled as JSON, building it
// at most once per published message (copies share the encoding). The
// returned slice is shared — callers must not modify it.
func (m Message) PayloadJSON() []byte {
	if m.cache == nil {
		return marshalPayload(m.Payload)
	}
	m.cache.mu.Lock()
	defer m.cache.mu.Unlock()
	if m.cache.payload == nil {
		m.cache.payload = marshalPayload(m.Payload)
	}
	return m.cache.payload
}

// SharedFrame returns the message's cached wire frame, rendering it with
// render (which receives the payload JSON) at most once per published
// message — every subscriber after the first gets the prebuilt bytes.
// Messages without a cache (in-memory publishes, hand-built messages)
// render per call. The returned slice is shared — callers must not
// modify it.
func (m Message) SharedFrame(render func(payloadJSON []byte) []byte) []byte {
	if m.cache == nil {
		return render(marshalPayload(m.Payload))
	}
	c := m.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frame == nil {
		if c.payload == nil {
			c.payload = marshalPayload(m.Payload)
		}
		// The render callback runs under c.mu on purpose: the mutex is
		// what makes the frame build once when many SSE pumps race to
		// drain the same publish, and renderers are pure encoders (the
		// gateway's builds bytes, no I/O, no locks).
		c.frame = render(c.payload) //dewsvet:lockhold-ok once-only render; renderers are pure encoders
	}
	return c.frame
}

// Validate checks envelope well-formedness. It iterates topic segments
// in place (no strings.Split) so validating on the publish hot path
// allocates nothing.
func (m Message) Validate() error {
	if m.Topic == "" {
		return fmt.Errorf("core: message without topic")
	}
	for rest, more := m.Topic, true; more; {
		var seg string
		seg, rest, more = cutSeg(rest)
		if seg == "" {
			return fmt.Errorf("core: topic %q has empty segment", m.Topic)
		}
		if seg == "+" || seg == "#" {
			return fmt.Errorf("core: topic %q contains wildcard; wildcards are for subscriptions", m.Topic)
		}
	}
	return nil
}

// TopicMatch reports whether a concrete topic matches a subscription
// pattern. Patterns use MQTT-style wildcards: '+' matches exactly one
// segment, '#' (only as the final segment) matches any remainder
// including none. Both strings are walked segment-by-segment in place —
// matching allocates nothing.
func TopicMatch(pattern, topic string) bool {
	pRest, tRest := pattern, topic
	pMore, tMore := true, true
	for pMore {
		var p string
		p, pRest, pMore = cutSeg(pRest)
		if p == "#" {
			return !pMore // '#' matches any remainder, but only as the final segment
		}
		if !tMore {
			return false // topic exhausted with pattern segments left
		}
		var t string
		t, tRest, tMore = cutSeg(tRest)
		if p != "+" && p != t {
			return false
		}
	}
	return !tMore // both exhausted together
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("core: empty subscription pattern")
	}
	for rest, more := pattern, true; more; {
		var seg string
		seg, rest, more = cutSeg(rest)
		switch {
		case seg == "":
			return fmt.Errorf("core: pattern %q has empty segment", pattern)
		case seg == "#" && more:
			return fmt.Errorf("core: pattern %q: '#' only allowed at the end", pattern)
		case strings.ContainsAny(seg, "+#") && len(seg) > 1:
			return fmt.Errorf("core: pattern %q: wildcard must be a whole segment", pattern)
		}
	}
	return nil
}

// Standard topic builders used across the system.

// TopicObservation names the observation topic for a district/property.
func TopicObservation(district, property string) string {
	return "obs/" + district + "/" + property
}

// TopicEvent names the inference topic for a district/event type.
func TopicEvent(district, eventType string) string {
	return "event/" + district + "/" + eventType
}

// TopicIK names the IK report topic for a district/indicator slug.
func TopicIK(district, indicator string) string {
	return "ik/" + district + "/" + indicator
}

// TopicBulletin names the forecast bulletin topic for a district.
func TopicBulletin(district string) string {
	return "bulletin/" + district
}
