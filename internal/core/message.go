package core

import (
	"fmt"
	"strings"
	"time"
)

// Message is the envelope circulating on the application abstraction
// layer.
type Message struct {
	// Offset is the broker-assigned monotonic sequence number (1-based,
	// assigned on Publish; 0 means the message never passed through a
	// broker). With an event log attached the offset is durable across
	// restarts and doubles as the replay/resume cursor — the gateway's
	// SSE id: field carries it.
	Offset uint64
	// Topic is a '/'-separated hierarchical subject, e.g.
	// "obs/mangaung/Rainfall" or "event/xhariep/DroughtWarning".
	Topic string
	// Time is the event time of the payload.
	Time time.Time
	// Payload carries the typed body (ssn.Record, cep.Event, ...).
	Payload any
	// Headers carries string metadata.
	Headers map[string]string
}

// Validate checks envelope well-formedness.
func (m Message) Validate() error {
	if m.Topic == "" {
		return fmt.Errorf("core: message without topic")
	}
	for _, seg := range strings.Split(m.Topic, "/") {
		if seg == "" {
			return fmt.Errorf("core: topic %q has empty segment", m.Topic)
		}
		if seg == "+" || seg == "#" {
			return fmt.Errorf("core: topic %q contains wildcard; wildcards are for subscriptions", m.Topic)
		}
	}
	return nil
}

// TopicMatch reports whether a concrete topic matches a subscription
// pattern. Patterns use MQTT-style wildcards: '+' matches exactly one
// segment, '#' (only as the final segment) matches any remainder
// including none.
func TopicMatch(pattern, topic string) bool {
	ps := strings.Split(pattern, "/")
	ts := strings.Split(topic, "/")
	for i, p := range ps {
		if p == "#" {
			return i == len(ps)-1
		}
		if i >= len(ts) {
			return false
		}
		if p != "+" && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("core: empty subscription pattern")
	}
	segs := strings.Split(pattern, "/")
	for i, s := range segs {
		switch {
		case s == "":
			return fmt.Errorf("core: pattern %q has empty segment", pattern)
		case s == "#" && i != len(segs)-1:
			return fmt.Errorf("core: pattern %q: '#' only allowed at the end", pattern)
		case strings.ContainsAny(s, "+#") && len(s) > 1:
			return fmt.Errorf("core: pattern %q: wildcard must be a whole segment", pattern)
		}
	}
	return nil
}

// Standard topic builders used across the system.

// TopicObservation names the observation topic for a district/property.
func TopicObservation(district, property string) string {
	return "obs/" + district + "/" + property
}

// TopicEvent names the inference topic for a district/event type.
func TopicEvent(district, eventType string) string {
	return "event/" + district + "/" + eventType
}

// TopicIK names the IK report topic for a district/indicator slug.
func TopicIK(district, indicator string) string {
	return "ik/" + district + "/" + indicator
}

// TopicBulletin names the forecast bulletin topic for a district.
func TopicBulletin(district string) string {
	return "bulletin/" + district
}
