package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// cutSeg splits off the next '/'-separated segment of s without
// allocating: seg is the leading segment, rest is everything after the
// first '/', and more reports whether rest holds further segments.
// Iterating cutSeg until !more yields exactly strings.Split(s, "/").
func cutSeg(s string) (seg, rest string, more bool) {
	return strings.Cut(s, "/")
}

// Message is the envelope circulating on the application abstraction
// layer.
type Message struct {
	// Offset is the broker-assigned monotonic sequence number (1-based,
	// assigned on Publish; 0 means the message never passed through a
	// broker). With an event log attached the offset is durable across
	// restarts and doubles as the replay/resume cursor — the gateway's
	// SSE id: field carries it.
	Offset uint64
	// Topic is a '/'-separated hierarchical subject, e.g.
	// "obs/mangaung/Rainfall" or "event/xhariep/DroughtWarning".
	Topic string
	// Time is the event time of the payload.
	Time time.Time
	// Payload carries the typed body (ssn.Record, cep.Event, ...).
	Payload any
	// Headers carries string metadata.
	Headers map[string]string

	// cache, when non-nil, carries lazily built wire encodings shared by
	// every copy of this message: the broker allocates one cache per
	// durable publish before fan-out, so the payload JSON is marshaled
	// once for the event log and reused by every subscriber that needs
	// wire bytes (the gateway's SSE frames), instead of once per
	// subscriber.
	cache *msgCache
}

// msgCache holds the lazily built wire encodings of one published
// message. All copies of the message share the pointer; the mutex makes
// concurrent renders (many SSE pumps draining the same publish) build
// each encoding exactly once.
type msgCache struct {
	mu sync.Mutex
	// payload is the payload marshaled as JSON.
	payload []byte
	// frame is an opaque caller-rendered frame (the gateway stores the
	// complete SSE event bytes here).
	frame []byte
}

// marshalPayload renders a payload as JSON. Payloads that do not marshal
// (channels, funcs — nothing the system publishes) degrade to their
// string rendering rather than failing the caller.
func marshalPayload(payload any) []byte {
	b, err := json.Marshal(payload)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(payload))
	}
	return b
}

// PayloadJSON returns the message payload marshaled as JSON, building it
// at most once per published message (copies share the encoding). The
// returned slice is shared — callers must not modify it.
func (m Message) PayloadJSON() []byte {
	if m.cache == nil {
		return marshalPayload(m.Payload)
	}
	m.cache.mu.Lock()
	defer m.cache.mu.Unlock()
	if m.cache.payload == nil {
		m.cache.payload = marshalPayload(m.Payload)
	}
	return m.cache.payload
}

// SharedFrame returns the message's cached wire frame, rendering it with
// render (which receives the payload JSON) at most once per published
// message — every subscriber after the first gets the prebuilt bytes.
// Messages without a cache (in-memory publishes, hand-built messages)
// render per call. The returned slice is shared — callers must not
// modify it.
func (m Message) SharedFrame(render func(payloadJSON []byte) []byte) []byte {
	if m.cache == nil {
		return render(marshalPayload(m.Payload))
	}
	c := m.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frame == nil {
		if c.payload == nil {
			c.payload = marshalPayload(m.Payload)
		}
		c.frame = render(c.payload)
	}
	return c.frame
}

// Validate checks envelope well-formedness. It iterates topic segments
// in place (no strings.Split) so validating on the publish hot path
// allocates nothing.
func (m Message) Validate() error {
	if m.Topic == "" {
		return fmt.Errorf("core: message without topic")
	}
	for rest, more := m.Topic, true; more; {
		var seg string
		seg, rest, more = cutSeg(rest)
		if seg == "" {
			return fmt.Errorf("core: topic %q has empty segment", m.Topic)
		}
		if seg == "+" || seg == "#" {
			return fmt.Errorf("core: topic %q contains wildcard; wildcards are for subscriptions", m.Topic)
		}
	}
	return nil
}

// TopicMatch reports whether a concrete topic matches a subscription
// pattern. Patterns use MQTT-style wildcards: '+' matches exactly one
// segment, '#' (only as the final segment) matches any remainder
// including none. Both strings are walked segment-by-segment in place —
// matching allocates nothing.
func TopicMatch(pattern, topic string) bool {
	pRest, tRest := pattern, topic
	pMore, tMore := true, true
	for pMore {
		var p string
		p, pRest, pMore = cutSeg(pRest)
		if p == "#" {
			return !pMore // '#' matches any remainder, but only as the final segment
		}
		if !tMore {
			return false // topic exhausted with pattern segments left
		}
		var t string
		t, tRest, tMore = cutSeg(tRest)
		if p != "+" && p != t {
			return false
		}
	}
	return !tMore // both exhausted together
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(pattern string) error {
	if pattern == "" {
		return fmt.Errorf("core: empty subscription pattern")
	}
	for rest, more := pattern, true; more; {
		var seg string
		seg, rest, more = cutSeg(rest)
		switch {
		case seg == "":
			return fmt.Errorf("core: pattern %q has empty segment", pattern)
		case seg == "#" && more:
			return fmt.Errorf("core: pattern %q: '#' only allowed at the end", pattern)
		case strings.ContainsAny(seg, "+#") && len(seg) > 1:
			return fmt.Errorf("core: pattern %q: wildcard must be a whole segment", pattern)
		}
	}
	return nil
}

// Standard topic builders used across the system.

// TopicObservation names the observation topic for a district/property.
func TopicObservation(district, property string) string {
	return "obs/" + district + "/" + property
}

// TopicEvent names the inference topic for a district/event type.
func TopicEvent(district, eventType string) string {
	return "event/" + district + "/" + eventType
}

// TopicIK names the IK report topic for a district/indicator slug.
func TopicIK(district, indicator string) string {
	return "ik/" + district + "/" + indicator
}

// TopicBulletin names the forecast bulletin topic for a district.
func TopicBulletin(district string) string {
	return "bulletin/" + district
}
