package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/eventlog"
)

// TestRCUChurnUnderPublish hammers the lock-free publish path: stable
// subscriptions registered up front must see exactly the matching
// messages (the multiset, once each) while other goroutines churn
// Subscribe/Unsubscribe — every churn step swaps in a fresh trie
// snapshot — and multiple publishers run Publish and PublishBatch
// concurrently. The fan-out oracle is the linear TopicMatch scan, so a
// trie snapshot that loses, duplicates, or leaks an entry mid-swap
// fails the multiset comparison. Run under -race this also certifies
// the RCU load/store pairing (publishers read the index without any
// lock).
func TestRCUChurnUnderPublish(t *testing.T) {
	for _, durable := range []bool{false, true} {
		name := "memory"
		if durable {
			name = "durable"
		}
		t.Run(name, func(t *testing.T) { rcuChurnStress(t, durable) })
	}
}

func rcuChurnStress(t *testing.T, durable bool) {
	const (
		stableSubs  = 20
		publishers  = 4
		churners    = 4
		perPub      = 300 // messages per publisher goroutine
		batchEvery  = 5   // every Nth publish goes through PublishBatch
		batchLen    = 4
		mailboxSize = 4 << 10 // > publishers*perPub*batchLen: nothing may drop
	)

	b := NewBroker()
	if durable {
		l, err := eventlog.Open(eventlog.Config{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := b.AttachLog(l); err != nil {
			t.Fatal(err)
		}
	}

	// Stable subscriptions: registered before any publish (fresh broker,
	// no retained state), so each must receive exactly the live fan-out.
	rng := rand.New(rand.NewSource(9))
	patterns := make([]string, stableSubs)
	subs := make([]*Subscription, stableSubs)
	for i := range subs {
		patterns[i] = randPattern(rng)
		var err error
		subs[i], err = b.Subscribe(patterns[i], mailboxSize, DropOldest)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Pre-generate each publisher's message stream with unique payload
	// ids so the oracle can compare exact multisets afterwards.
	type pubMsg struct {
		topic string
		id    int
	}
	streams := make([][]pubMsg, publishers)
	for p := range streams {
		prng := rand.New(rand.NewSource(int64(100 + p)))
		for i := 0; i < perPub; i++ {
			streams[p] = append(streams[p], pubMsg{topic: randTopic(prng), id: p*1_000_000 + i})
		}
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	for c := 0; c < churners; c++ {
		churnWG.Add(1)
		go func(seed int64) {
			defer churnWG.Done()
			crng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := b.Subscribe(randPattern(crng), 16, DropOldest)
				if err != nil {
					t.Error(err)
					return
				}
				b.Unsubscribe(s)
			}
		}(int64(200 + c))
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(stream []pubMsg) {
			defer pubWG.Done()
			for i := 0; i < len(stream); {
				if i%batchEvery == 0 && i+batchLen <= len(stream) {
					batch := make([]Message, batchLen)
					for j := range batch {
						batch[j] = Message{Topic: stream[i+j].topic, Payload: stream[i+j].id}
					}
					if _, err := b.PublishBatch(batch); err != nil {
						t.Error(err)
						return
					}
					i += batchLen
					continue
				}
				if _, err := b.Publish(Message{Topic: stream[i].topic, Payload: stream[i].id}); err != nil {
					t.Error(err)
					return
				}
				i++
			}
		}(streams[p])
	}
	pubWG.Wait()
	close(stop)
	churnWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Oracle: the linear TopicMatch scan over everything published.
	want := make([]map[int]int, stableSubs) // pattern -> payload id -> count
	for i := range want {
		want[i] = make(map[int]int)
	}
	for _, stream := range streams {
		for _, m := range stream {
			for i, p := range patterns {
				if TopicMatch(p, m.topic) {
					want[i][m.id]++
				}
			}
		}
	}
	for i, s := range subs {
		if d := s.Dropped(); d != 0 {
			t.Fatalf("pattern %q dropped %d messages; mailbox sized to hold everything", patterns[i], d)
		}
		got := make(map[int]int)
		seenOffsets := make(map[uint64]bool)
		for _, m := range s.Poll(0) {
			got[m.Payload.(int)]++
			if m.Offset == 0 {
				t.Fatalf("pattern %q received message without offset: %+v", patterns[i], m)
			}
			if seenOffsets[m.Offset] {
				t.Fatalf("pattern %q received offset %d twice", patterns[i], m.Offset)
			}
			seenOffsets[m.Offset] = true
		}
		if len(got) != len(want[i]) {
			t.Fatalf("pattern %q: %d distinct ids delivered, oracle wants %d", patterns[i], len(got), len(want[i]))
		}
		for id, n := range want[i] {
			if got[id] != n {
				t.Fatalf("pattern %q: id %d delivered %d times, oracle wants %d", patterns[i], id, got[id], n)
			}
		}
	}
	if durable {
		// WAL order == offset order: replay must observe every publish
		// exactly once, contiguous from 1.
		total := 0
		next, err := b.ReplayFrom(1, "#", func(m Message) error {
			total++
			if m.Offset != uint64(total) {
				return fmt.Errorf("replay offset %d at position %d", m.Offset, total)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if wantTotal := publishers * perPub; total != wantTotal {
			t.Fatalf("replayed %d records, want %d (next=%d)", total, wantTotal, next)
		}
	}
}
