package core

import (
	"testing"
)

func TestAckSubscriptionBasicFlow(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("alert/#", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(Message{Topic: "alert/x", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	ds := sub.Fetch(2)
	if len(ds) != 2 {
		t.Fatalf("fetched %d", len(ds))
	}
	q, inflight := sub.Pending()
	if q != 1 || inflight != 2 {
		t.Fatalf("pending = %d/%d", q, inflight)
	}
	if err := sub.Ack(ds[0].Seq); err != nil {
		t.Fatal(err)
	}
	if sub.Acked() != 1 {
		t.Errorf("acked = %d", sub.Acked())
	}
	// Double-ack is an error.
	if err := sub.Ack(ds[0].Seq); err == nil {
		t.Error("double ack should fail")
	}
	// Unacked delivery returns to the head on redeliver.
	if n := sub.Redeliver(); n != 1 {
		t.Fatalf("redelivered %d", n)
	}
	again := sub.Fetch(0)
	if len(again) != 2 {
		t.Fatalf("after redeliver fetched %d", len(again))
	}
	if again[0].Seq != ds[1].Seq {
		t.Errorf("redelivered message should come first: %v", again)
	}
	// Payload integrity across the redelivery cycle.
	if again[0].Message.Payload != 1 {
		t.Errorf("payload = %v", again[0].Message.Payload)
	}
}

func TestAckSubscriptionAtLeastOnce(t *testing.T) {
	// A crashing consumer (fetch without ack) must see every message
	// again — the at-least-once guarantee.
	b := NewBroker()
	sub, _ := b.SubscribeAck("x/#", 100)
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(Message{Topic: "x/t", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	first := sub.Fetch(0) // consumer "crashes" here
	if len(first) != 5 {
		t.Fatal("fetch failed")
	}
	sub.Redeliver()
	second := sub.Fetch(0)
	if len(second) != 5 {
		t.Fatalf("replay saw %d of 5", len(second))
	}
	for i, d := range second {
		if d.Message.Payload != i {
			t.Errorf("order lost: %v", second)
		}
		if err := sub.Ack(d.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if n := sub.Redeliver(); n != 0 {
		t.Errorf("nothing should remain, redelivered %d", n)
	}
}

func TestAckSubscriptionBackpressureCountsInflight(t *testing.T) {
	b := NewBroker()
	sub, _ := b.SubscribeAck("x/#", 2)
	if _, err := b.Publish(Message{Topic: "x/t", Payload: 0}); err != nil {
		t.Fatal(err)
	}
	sub.Fetch(0) // one in flight
	if _, err := b.Publish(Message{Topic: "x/t", Payload: 1}); err != nil {
		t.Fatal(err)
	}
	// Queue(1) + inflight(1) = capacity → next drops.
	if _, err := b.Publish(Message{Topic: "x/t", Payload: 2}); err != nil {
		t.Fatal(err)
	}
	if sub.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", sub.Dropped())
	}
}

func TestAckSubscriptionRetainedReplay(t *testing.T) {
	b := NewBroker()
	if _, err := b.Publish(Message{Topic: "bulletin/mangaung", Payload: "latest"}); err != nil {
		t.Fatal(err)
	}
	sub, err := b.SubscribeAck("bulletin/#", 10)
	if err != nil {
		t.Fatal(err)
	}
	ds := sub.Fetch(0)
	if len(ds) != 1 || ds[0].Message.Payload != "latest" {
		t.Fatalf("retained replay = %v", ds)
	}
}

func TestUnsubscribeAck(t *testing.T) {
	b := NewBroker()
	sub, _ := b.SubscribeAck("x/#", 10)
	b.UnsubscribeAck(sub)
	if _, err := b.Publish(Message{Topic: "x/t"}); err != nil {
		t.Fatal(err)
	}
	if q, _ := sub.Pending(); q != 0 {
		t.Error("closed ack subscription received a message")
	}
	b.UnsubscribeAck(nil) // no panic
}

func TestAckAndPlainSubscriptionsCoexist(t *testing.T) {
	b := NewBroker()
	plain, _ := b.Subscribe("x/#", 10, DropOldest)
	acked, _ := b.SubscribeAck("x/#", 10)
	n, err := b.Publish(Message{Topic: "x/t", Payload: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reached %d subscriptions, want 2", n)
	}
	if len(plain.Poll(0)) != 1 {
		t.Error("plain subscription missed the message")
	}
	if len(acked.Fetch(0)) != 1 {
		t.Error("ack subscription missed the message")
	}
	if b.Stats().Deliveries != 2 {
		t.Errorf("deliveries = %d", b.Stats().Deliveries)
	}
}

func TestSubscribeAckValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.SubscribeAck("bad//pattern", 10); err == nil {
		t.Error("invalid pattern should be rejected")
	}
}
