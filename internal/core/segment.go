package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cep"
	"repro/internal/mediator"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ServiceDescription is a semantic service description in the registry
// ("semantic services description module" of Figure 3): a capability is
// an ontology class; discovery is subsumption-aware.
type ServiceDescription struct {
	// ID is the service IRI.
	ID rdf.IRI
	// Capability is the ontology class the service provides
	// (e.g. dews:MeteorologicalDrought forecasts).
	Capability rdf.IRI
	// Endpoint is the broker topic (or URL) the service serves on.
	Endpoint string
	// Description is human documentation.
	Description string
}

// Validate checks the description.
func (s ServiceDescription) Validate() error {
	switch {
	case s.ID == "":
		return fmt.Errorf("core: service without ID")
	case s.Capability == "":
		return fmt.Errorf("core: service %s without capability", s.ID)
	case s.Endpoint == "":
		return fmt.Errorf("core: service %s without endpoint", s.ID)
	}
	return nil
}

// Segment is the ontology segment layer: unified ontology + reasoner
// output, data graph, query engine, annotator, per-key CEP engines, and
// the service registry.
type Segment struct {
	onto *ontology.Ontology
	// data holds assertional knowledge produced at run time
	// (observations, inferred events); the ontology graph is merged in so
	// queries see both.
	data      *rdf.Graph
	engine    *sparql.Engine
	annotator *mediator.Annotator

	rules []cep.Rule

	mu       sync.Mutex
	cepByKey map[string]*cep.Engine
	// cepLocks serializes Process calls per shard: the engine itself is
	// single-goroutine, so overlapping ingest cycles must take the
	// shard's lock before feeding it.
	cepLocks map[string]*sync.Mutex
	services map[rdf.IRI]ServiceDescription
}

// NewSegment builds the layer around a materialized ontology and a CEP
// rule set. The data graph starts as a clone of the ontology graph so
// SPARQL queries span schema and data.
func NewSegment(o *ontology.Ontology, rules []cep.Rule) (*Segment, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	data := o.Graph().Clone()
	s := &Segment{
		onto:      o,
		data:      data,
		engine:    sparql.NewEngine(data),
		annotator: mediator.NewAnnotator(o),
		rules:     rules,
		cepByKey:  make(map[string]*cep.Engine),
		cepLocks:  make(map[string]*sync.Mutex),
		services:  make(map[rdf.IRI]ServiceDescription),
	}
	mediator.SeedAlignments(s.annotator.Registry())
	return s, nil
}

// Ontology exposes the unified ontology.
func (s *Segment) Ontology() *ontology.Ontology { return s.onto }

// Annotator exposes the mediator.
func (s *Segment) Annotator() *mediator.Annotator { return s.annotator }

// Graph exposes the combined schema+data graph.
func (s *Segment) Graph() *rdf.Graph { return s.data }

// Query runs a SPARQL query over schema+data.
func (s *Segment) Query(src string) (any, error) { return s.engine.Query(src) }

// Select runs a SELECT query.
func (s *Segment) Select(src string) (*sparql.Solutions, error) {
	q, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.engine.Select(q)
}

// CEPEngine returns (creating on first use) the engine shard for a
// partition key (district). Each shard gets a fresh compilation of the
// configured rule set. Callers that may overlap with other ingest
// cycles must hold the shard's lock (cepShardLock) while processing.
func (s *Segment) CEPEngine(key string) (*cep.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cepByKey[key]; ok {
		return e, nil
	}
	e, err := cep.NewEngine(s.rules)
	if err != nil {
		return nil, err
	}
	s.cepByKey[key] = e
	s.cepLocks[key] = &sync.Mutex{}
	return e, nil
}

// cepShardLock returns the mutex serializing Process calls on a shard.
func (s *Segment) cepShardLock(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.cepLocks[key]
	if !ok {
		l = &sync.Mutex{}
		s.cepLocks[key] = l
	}
	return l
}

// CEPKeys lists the active shards in sorted order.
func (s *Segment) CEPKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.cepByKey))
	for k := range s.cepByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RegisterService adds (or replaces) a service description and mirrors
// it into the data graph so it is queryable via SPARQL.
func (s *Segment) RegisterService(desc ServiceDescription) error {
	if err := desc.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.services[desc.ID] = desc
	svcClass := rdf.NSDEWS.IRI("SemanticService")
	g := s.data
	g.MustAdd(rdf.T(desc.ID, rdf.RDFType, svcClass))
	g.MustAdd(rdf.T(desc.ID, rdf.NSDEWS.IRI("capability"), desc.Capability))
	g.MustAdd(rdf.T(desc.ID, rdf.NSDEWS.IRI("endpoint"), rdf.NewLiteral(desc.Endpoint)))
	if desc.Description != "" {
		g.MustAdd(rdf.T(desc.ID, rdf.RDFSComment, rdf.NewLangLiteral(desc.Description, "en")))
	}
	return nil
}

// Discover returns services whose capability is the requested class or a
// subclass of it, sorted by ID.
func (s *Segment) Discover(capability rdf.IRI) []ServiceDescription {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ServiceDescription
	for _, desc := range s.services {
		if desc.Capability == capability || s.onto.IsSubClassOf(desc.Capability, capability) {
			out = append(out, desc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Services lists every registered service sorted by ID.
func (s *Segment) Services() []ServiceDescription {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ServiceDescription, 0, len(s.services))
	for _, d := range s.services {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
