package core

import (
	"encoding/json"
	"errors"

	"repro/internal/eventlog"
)

// ErrNoLog is returned by replay APIs when the broker has no event log
// attached.
var ErrNoLog = errors.New("core: broker has no event log")

// AttachLog makes the broker durable: every subsequent publish is
// written through to l before fan-out (the log's sequencer assigns the
// broker's offsets), and the broker's state is first recovered from the
// log — the retained stripes are rebuilt from history (the last record
// per topic wins, exactly the in-memory retention rule). Attach before
// any traffic, typically right after NewBroker over a directory that may
// hold a previous run's log; the number of replayed records is returned.
func (b *Broker) AttachLog(l *eventlog.Log) (int, error) {
	// Check eligibility under subMu, but release it before the replay:
	// rebuilding retained state reads the entire WAL, and the retained
	// stripes carry their own locks — holding the subscription mutex
	// across that file I/O would stall every subscribe for the whole
	// recovery.
	b.subMu.Lock()
	attached := b.log.Load() != nil
	seq := b.seq.Load()
	b.subMu.Unlock()
	if attached {
		return 0, errors.New("core: broker already has an event log")
	}
	// A broker that already published in-memory has offsets the log never
	// saw; attaching now would collide the two sequences (in-memory
	// offsets overlap the log's append offsets, breaking resume cursors
	// and retained ordering). Refuse instead.
	if seq != 0 {
		return 0, errors.New("core: AttachLog requires a fresh broker (attach before any publish)")
	}
	replayed := 0
	_, err := l.Scan(0, func(rec eventlog.Record) error {
		m := messageOf(rec)
		b.retain(&m)
		replayed++
		return nil
	})
	if err != nil {
		return replayed, err
	}
	// Re-check under the lock before publishing the log pointer: a
	// competing AttachLog may have won, or an in-memory publish may have
	// slipped in during the unlocked replay (the old code, which held
	// subMu throughout, had the same race — Publish never takes subMu).
	b.subMu.Lock()
	defer b.subMu.Unlock()
	if b.log.Load() != nil {
		return replayed, errors.New("core: broker already has an event log")
	}
	if b.seq.Load() != 0 {
		return replayed, errors.New("core: AttachLog requires a fresh broker (attach before any publish)")
	}
	b.log.Store(l)
	return replayed, nil
}

// Log returns the attached event log, nil when the broker is in-memory
// only.
func (b *Broker) Log() *eventlog.Log {
	return b.log.Load()
}

// NextOffset returns the offset the next publish will receive: the
// log's next append offset for durable brokers, the atomic sequence
// plus one otherwise.
func (b *Broker) NextOffset() uint64 {
	if l := b.log.Load(); l != nil {
		return l.NextOffset()
	}
	return b.seq.Load() + 1
}

// ReplayFrom streams every logged message with offset >= from whose
// topic matches pattern to fn, in offset order, up to the log's end at
// call time; it returns the next offset to replay from (pass it back in
// to continue after new publishes). History older than the retention
// horizon is gone — callers start at the oldest surviving record. fn
// errors abort the replay. Requires an attached log.
func (b *Broker) ReplayFrom(from uint64, pattern string, fn func(Message) error) (uint64, error) {
	if err := ValidatePattern(pattern); err != nil {
		return 0, err
	}
	l := b.log.Load()
	if l == nil {
		return 0, ErrNoLog
	}
	return l.Scan(from, func(rec eventlog.Record) error {
		if !TopicMatch(pattern, rec.Topic) {
			return nil
		}
		return fn(messageOf(rec))
	})
}

// SubscribeLive is Subscribe without the retained-topic replay: the
// subscription sees only messages published after the call. Resuming
// consumers (the gateway's Last-Event-ID path) use it so history comes
// solely from ReplayFrom, in offset order, without retained duplicates.
func (b *Broker) SubscribeLive(pattern string, capacity int, policy DropPolicy) (*Subscription, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	sub := &Subscription{Pattern: pattern, cap: capacity, policy: policy}
	sub.ID = b.registerEntry(pattern, sub)
	return sub, nil
}

// messageOf converts a durable record back to a message. Payloads decode
// to generic JSON values (maps, slices, numbers) — replayed history
// interoperates structurally, not by Go type, exactly like messages
// published through the gateway. The record's raw payload bytes are
// stashed in the message's encode cache, so a gateway replaying history
// to SSE clients renders frames from the stored JSON without a decode →
// re-encode round trip.
func messageOf(rec eventlog.Record) Message {
	m := Message{Offset: rec.Offset, Topic: rec.Topic, Time: rec.Time, Headers: rec.Headers}
	if len(rec.Payload) > 0 {
		var v any
		if err := json.Unmarshal(rec.Payload, &v); err == nil {
			m.Payload = v
		} else {
			m.Payload = string(rec.Payload)
		}
		m.cache = &msgCache{payload: rec.Payload}
	}
	return m
}
