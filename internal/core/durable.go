package core

import (
	"encoding/json"
	"errors"

	"repro/internal/eventlog"
)

// ErrNoLog is returned by replay APIs when the broker has no event log
// attached.
var ErrNoLog = errors.New("core: broker has no event log")

// AttachLog makes the broker durable: every subsequent publish is
// written through to l before fan-out, and the broker's state is first
// recovered from the log — the retained map is rebuilt from history (the
// last record per topic wins, exactly the in-memory retention rule) and
// the offset sequence continues where the log ends. Attach before any
// traffic, typically right after NewBroker over a directory that may
// hold a previous run's log; the number of replayed records is returned.
func (b *Broker) AttachLog(l *eventlog.Log) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.log != nil {
		return 0, errors.New("core: broker already has an event log")
	}
	// A broker that already published in-memory has offsets the log never
	// saw; attaching now would collide the two sequences (the next stamp
	// would disagree with the log's append offset and every publish would
	// fail while still writing orphan records). Refuse instead.
	if b.nextOffset != 1 {
		return 0, errors.New("core: AttachLog requires a fresh broker (attach before any publish)")
	}
	replayed := 0
	next, err := l.Scan(0, func(rec eventlog.Record) error {
		b.retain(messageOf(rec))
		replayed++
		return nil
	})
	if err != nil {
		return replayed, err
	}
	b.log = l
	b.nextOffset = next
	return replayed, nil
}

// Log returns the attached event log, nil when the broker is in-memory
// only.
func (b *Broker) Log() *eventlog.Log {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.log
}

// NextOffset returns the offset the next publish will receive.
func (b *Broker) NextOffset() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextOffset
}

// ReplayFrom streams every logged message with offset >= from whose
// topic matches pattern to fn, in offset order, up to the log's end at
// call time; it returns the next offset to replay from (pass it back in
// to continue after new publishes). History older than the retention
// horizon is gone — callers start at the oldest surviving record. fn
// errors abort the replay. Requires an attached log.
func (b *Broker) ReplayFrom(from uint64, pattern string, fn func(Message) error) (uint64, error) {
	if err := ValidatePattern(pattern); err != nil {
		return 0, err
	}
	b.mu.Lock()
	l := b.log
	b.mu.Unlock()
	if l == nil {
		return 0, ErrNoLog
	}
	return l.Scan(from, func(rec eventlog.Record) error {
		if !TopicMatch(pattern, rec.Topic) {
			return nil
		}
		return fn(messageOf(rec))
	})
}

// SubscribeLive is Subscribe without the retained-topic replay: the
// subscription sees only messages published after the call. Resuming
// consumers (the gateway's Last-Event-ID path) use it so history comes
// solely from ReplayFrom, in offset order, without retained duplicates.
func (b *Broker) SubscribeLive(pattern string, capacity int, policy DropPolicy) (*Subscription, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	sub := &Subscription{Pattern: pattern, cap: capacity, policy: policy}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	e := &subEntry{id: b.nextID, pattern: pattern, sub: sub}
	b.entries[e.id] = e
	b.index.insert(pattern, e)
	sub.ID = e.id
	return sub, nil
}

// recordOf converts a message to its durable form. The payload is
// marshaled through the message's shared encode cache, so the same
// bytes written to the log are later reused by wire-facing subscribers
// (the gateway's SSE frames) without re-marshaling. Payloads that do
// not marshal (channels, funcs — nothing the system publishes) degrade
// to their string rendering, mirroring the gateway's wire conversion.
func recordOf(m *Message) eventlog.Record {
	return eventlog.Record{Topic: m.Topic, Time: m.Time, Payload: m.PayloadJSON(), Headers: m.Headers}
}

// messageOf converts a durable record back to a message. Payloads decode
// to generic JSON values (maps, slices, numbers) — replayed history
// interoperates structurally, not by Go type, exactly like messages
// published through the gateway. The record's raw payload bytes are
// stashed in the message's encode cache, so a gateway replaying history
// to SSE clients renders frames from the stored JSON without a decode →
// re-encode round trip.
func messageOf(rec eventlog.Record) Message {
	m := Message{Offset: rec.Offset, Topic: rec.Topic, Time: rec.Time, Headers: rec.Headers}
	if len(rec.Payload) > 0 {
		var v any
		if err := json.Unmarshal(rec.Payload, &v); err == nil {
			m.Payload = v
		} else {
			m.Payload = string(rec.Payload)
		}
		m.cache = &msgCache{payload: rec.Payload}
	}
	return m
}
