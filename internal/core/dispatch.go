package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Handler consumes one pushed message. Handlers for one subscription are
// never invoked concurrently and see messages in publish order; distinct
// subscriptions run in parallel across the dispatcher's worker pool.
type Handler func(m Message)

// dispatchBatch bounds how many messages one worker turn drains from a
// mailbox before requeueing it, so a hot subscription cannot starve the
// others.
const dispatchBatch = 256

// handlerSub wraps a Subscription with a handler: every offer lands in
// the bounded mailbox as usual, then the mailbox is scheduled onto the
// dispatcher's worker pool. Backpressure semantics (capacity, drop
// policy) are exactly those of the underlying subscription.
type handlerSub struct {
	*Subscription
	fn Handler
	b  *Broker
	// scheduled is the mailbox's run state: true while the subscription
	// is queued for, or being drained by, a worker.
	scheduled atomic.Bool
}

func (h *handlerSub) offer(m Message) {
	h.Subscription.offer(m)
	if d := h.b.dispatcher(); d != nil {
		d.schedule(h)
	}
}

// offerRetained mirrors offer for the subscribe-time retained replay:
// the embedded Subscription's offset dedupe applies, and the mailbox is
// scheduled so the handler sees the replay without waiting for the next
// live publish.
func (h *handlerSub) offerRetained(m Message) {
	h.Subscription.offerRetained(m)
	if d := h.b.dispatcher(); d != nil {
		d.schedule(h)
	}
}

// dispatcher is the push-mode worker pool: workers drain scheduled
// handler mailboxes and invoke their handlers.
type dispatcher struct {
	mu      sync.Mutex
	work    *sync.Cond // signaled when queue grows or on stop
	idle    *sync.Cond // broadcast when inFlight returns to zero
	queue   []*handlerSub
	stopped bool
	// workers is the pool size, fixed at construction (exposed in
	// BrokerStats).
	workers int
	// inFlight counts mailboxes that are queued or being drained.
	inFlight int
	wg       sync.WaitGroup
}

func newDispatcher(workers int) *dispatcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := &dispatcher{workers: workers}
	d.work = sync.NewCond(&d.mu)
	d.idle = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

// schedule queues a mailbox unless it is already queued or draining.
func (d *dispatcher) schedule(h *handlerSub) {
	if !h.scheduled.CompareAndSwap(false, true) {
		return
	}
	d.mu.Lock()
	if d.stopped {
		h.scheduled.Store(false)
		d.mu.Unlock()
		return
	}
	d.queue = append(d.queue, h)
	d.inFlight++
	d.mu.Unlock()
	d.work.Signal()
}

func (d *dispatcher) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.stopped {
			d.work.Wait()
		}
		if len(d.queue) == 0 { // stopped and drained
			d.mu.Unlock()
			return
		}
		h := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()

		for _, m := range h.Poll(dispatchBatch) {
			// Stop invoking the handler once the subscription is closed:
			// after Unsubscribe returns, the handler's resources may be
			// gone. (An invocation already past this check can still
			// complete concurrently with Unsubscribe.)
			if h.isClosed() {
				break
			}
			h.fn(m)
		}
		h.scheduled.Store(false)
		// Messages offered between the Poll and the flag clear lost their
		// wake-up; re-check and reschedule so nothing sits unserved.
		if !h.isClosed() && h.Pending() > 0 {
			d.schedule(h)
		}
		d.mu.Lock()
		d.inFlight--
		if d.inFlight == 0 {
			d.idle.Broadcast()
		}
		d.mu.Unlock()
	}
}

// drain blocks until every scheduled mailbox has been fully drained.
// Messages published after drain is called are not waited for.
func (d *dispatcher) drain() {
	d.mu.Lock()
	for d.inFlight > 0 {
		d.idle.Wait()
	}
	d.mu.Unlock()
}

// stop processes the remaining queue, then terminates the workers.
func (d *dispatcher) stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
	d.work.Broadcast()
	d.wg.Wait()
}

// dispatcher returns the running dispatcher, or nil.
func (b *Broker) dispatcher() *dispatcher {
	b.dispatchMu.Lock()
	defer b.dispatchMu.Unlock()
	return b.dispatch
}

// StartDispatch starts the push-mode dispatcher with the given worker
// count (GOMAXPROCS when <= 0). It is a no-op if already running.
// Handler mailboxes that accumulated a backlog while no dispatcher was
// running are rescheduled immediately.
func (b *Broker) StartDispatch(workers int) {
	b.dispatchMu.Lock()
	if b.dispatch != nil {
		b.dispatchMu.Unlock()
		return
	}
	d := newDispatcher(workers)
	b.dispatch = d
	b.dispatchMu.Unlock()

	b.subMu.Lock()
	var backlog []*handlerSub
	for _, e := range b.entries {
		if h, ok := e.sub.(*handlerSub); ok && h.Pending() > 0 {
			backlog = append(backlog, h)
		}
	}
	b.subMu.Unlock()
	for _, h := range backlog {
		d.schedule(h)
	}
}

// StopDispatch drains the scheduled work and stops the worker pool.
// Handler subscriptions keep accumulating messages in their mailboxes
// afterwards (and can still be polled); no new pushes happen until
// StartDispatch is called again.
func (b *Broker) StopDispatch() {
	b.dispatchMu.Lock()
	d := b.dispatch
	b.dispatch = nil
	b.dispatchMu.Unlock()
	if d != nil {
		d.stop()
	}
}

// DrainDispatch blocks until every message published before the call
// has been handed to its handlers.
func (b *Broker) DrainDispatch() {
	b.dispatchMu.Lock()
	d := b.dispatch
	b.dispatchMu.Unlock()
	if d != nil {
		d.drain()
	}
}

// SubscribeHandler registers a push-mode subscription: matching messages
// are enqueued into a bounded mailbox (capacity default 1024 when <= 0,
// with the given drop policy) and drained by the dispatcher's worker
// pool into fn. The dispatcher is started with default workers if it is
// not already running. The returned Subscription supports Pending,
// Dropped, Delivered and Unsubscribe; polling it directly would race
// the dispatcher and is not supported.
func (b *Broker) SubscribeHandler(pattern string, capacity int, policy DropPolicy, fn Handler) (*Subscription, error) {
	// Validate before starting the worker pool: a rejected pattern must
	// not leave idle workers behind as a side effect.
	if err := ValidatePattern(pattern); err != nil {
		return nil, err
	}
	b.StartDispatch(0)
	if capacity <= 0 {
		capacity = 1024
	}
	sub := &Subscription{Pattern: pattern, cap: capacity, policy: policy}
	h := &handlerSub{Subscription: sub, fn: fn, b: b}
	id, err := b.register(pattern, h)
	if err != nil {
		return nil, err
	}
	sub.ID = id
	return sub, nil
}
