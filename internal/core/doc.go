// Package core implements the paper's primary contribution: the
// ontology-based semantic middleware, structured exactly as Figure 3's
// three-tier architecture:
//
//   - the application abstraction layer (broker.go, topictree.go,
//     qos.go, dispatch.go): a topic-based publish/subscribe message
//     fabric — "a high level of software abstraction that allows
//     communication among the applications and the semantic
//     middleware". Matching goes through a segment topic trie, so
//     publish cost scales with topic depth, not subscription count.
//     Subscribers choose their QoS: bounded polled Subscriptions
//     (at-most-once, drop accounted), AckSubscriptions (at-least-once
//     fetch/ack/redeliver, the SMS-channel tier), or push-mode handler
//     subscriptions drained by a worker-pool dispatcher. The broker is
//     reachable over the network through internal/gateway;
//
//   - the ontology segment layer (segment.go): the unified ontology
//     with its reasoner, the SPARQL query engine, the semantic
//     annotator, the CEP inference engine (sharded per district) and
//     the semantic service description registry;
//
//   - the interface protocol layer (protocol.go): the adapter that
//     "liaise[s] with the storage database in the cloud for downloading
//     the semi-processed sensory reading", fetching all sources
//     concurrently with a deterministic sorted-name merge.
//
// middleware.go wires the three tiers into one facade whose Ingest is a
// staged concurrent pipeline: parallel fetch → batch mediation → batch
// publish → per-district CEP worker shards (see ARCHITECTURE.md).
package core
