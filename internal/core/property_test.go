package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// segmentAlphabet deliberately includes colliding prefixes, single
// characters and longer words so random patterns and topics overlap
// often enough to exercise every trie branch.
var segmentAlphabet = []string{"a", "b", "c", "ab", "obs", "event", "d1", "x"}

// randPattern generates a valid subscription pattern: each level is an
// exact segment or '+', and with some probability the pattern terminates
// in '#'. The result always passes ValidatePattern.
func randPattern(rng *rand.Rand) string {
	depth := 1 + rng.Intn(5)
	segs := make([]string, 0, depth)
	for i := 0; i < depth; i++ {
		switch r := rng.Float64(); {
		case r < 0.15:
			segs = append(segs, "#")
			return joinSegs(segs)
		case r < 0.40:
			segs = append(segs, "+")
		default:
			segs = append(segs, segmentAlphabet[rng.Intn(len(segmentAlphabet))])
		}
	}
	return joinSegs(segs)
}

// randTopic generates a valid concrete topic (no wildcards).
func randTopic(rng *rand.Rand) string {
	depth := 1 + rng.Intn(6)
	segs := make([]string, depth)
	for i := range segs {
		segs[i] = segmentAlphabet[rng.Intn(len(segmentAlphabet))]
	}
	return joinSegs(segs)
}

func joinSegs(segs []string) string {
	out := segs[0]
	for _, s := range segs[1:] {
		out += "/" + s
	}
	return out
}

// TestPublishFanOutMatchesLinearOracle cross-checks the broker's
// topic-trie fan-out against a naive oracle: for every randomized
// (pattern set, topic) pair, the set of subscriptions that receive a
// publish must equal the set whose pattern TopicMatch-es the topic by
// linear scan. Runs many trials with unsubscription churn in between so
// trie insertion, matching and pruning all get exercised.
func TestPublishFanOutMatchesLinearOracle(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		b := NewBroker()

		type regSub struct {
			pattern string
			sub     *Subscription
		}
		var regs []regSub
		for i := 0; i < 2+rng.Intn(30); i++ {
			pattern := randPattern(rng)
			if err := ValidatePattern(pattern); err != nil {
				t.Fatalf("generator produced invalid pattern %q: %v", pattern, err)
			}
			sub, err := b.Subscribe(pattern, 4096, DropOldest)
			if err != nil {
				t.Fatalf("Subscribe(%q): %v", pattern, err)
			}
			regs = append(regs, regSub{pattern, sub})
		}
		// Unsubscribe a random subset: matching must respect pruning.
		kept := regs[:0]
		for _, r := range regs {
			if rng.Float64() < 0.25 {
				b.Unsubscribe(r.sub)
			} else {
				kept = append(kept, r)
			}
		}
		regs = kept

		topics := make(map[string]bool)
		for i := 0; i < 3+rng.Intn(20); i++ {
			topics[randTopic(rng)] = true
		}
		for topic := range topics {
			reached, err := b.Publish(Message{Topic: topic, Payload: topic})
			if err != nil {
				t.Fatalf("Publish(%q): %v", topic, err)
			}
			oracle := 0
			for _, r := range regs {
				if TopicMatch(r.pattern, topic) {
					oracle++
				}
			}
			if reached != oracle {
				t.Fatalf("trial %d: Publish(%q) reached %d subscriptions, linear oracle says %d",
					trial, topic, reached, oracle)
			}
		}

		// Per-subscription check: each must have received exactly the
		// topics its pattern matches (order-insensitive).
		for _, r := range regs {
			var want []string
			for topic := range topics {
				if TopicMatch(r.pattern, topic) {
					want = append(want, topic)
				}
			}
			var got []string
			for _, m := range r.sub.Poll(0) {
				got = append(got, m.Topic)
			}
			sort.Strings(want)
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d: pattern %q received %v, oracle wants %v", trial, r.pattern, got, want)
			}
		}
	}
}

// TestTrieEdgeSegments pins the wildcard edge cases the fuzz-style
// random trials may hit rarely: '#' matching zero remaining levels, '+'
// refusing to match across levels, and root-level patterns.
func TestTrieEdgeSegments(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"#", "a", true},
		{"#", "a/b/c", true},
		{"a/#", "a", true}, // '#' covers the parent level itself
		{"a/#", "a/b/c", true},
		{"a/#", "b", false},
		{"+", "a", true},
		{"+", "a/b", false},
		{"+/+", "a/b", true},
		{"+/#", "a", true},
		{"+/#", "a/b/c", true},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/+/c", "a/c", false},
		{"ab/c", "a/c", false}, // prefix segments must not merge
		{"a/b", "ab", false},
	}
	for _, tc := range cases {
		b := NewBroker()
		sub, err := b.Subscribe(tc.pattern, 8, DropOldest)
		if err != nil {
			t.Fatalf("Subscribe(%q): %v", tc.pattern, err)
		}
		if got := TopicMatch(tc.pattern, tc.topic); got != tc.want {
			t.Errorf("oracle TopicMatch(%q, %q) = %v, want %v", tc.pattern, tc.topic, got, tc.want)
		}
		reached, err := b.Publish(Message{Topic: tc.topic, Payload: 1})
		if err != nil {
			t.Fatalf("Publish(%q): %v", tc.topic, err)
		}
		if (reached == 1) != tc.want {
			t.Errorf("trie fan-out for (%q, %q) = %d deliveries, want match=%v", tc.pattern, tc.topic, reached, tc.want)
		}
		_ = sub
	}
}
