package core

// The subscription index is a segment-based topic trie, kept as an
// immutable snapshot: the broker holds the current root behind an
// atomic.Pointer, publishers match against whatever root they load
// (lock-free, RCU-style), and Subscribe/Unsubscribe build a new root by
// path-copying only the nodes along the changed pattern. A nil root is
// the empty tree.
//
// Pattern semantics are MQTT's: '+' descends into a dedicated
// single-level child, '#' terminates at the node covering its parent
// level ("obs/#" matches "obs" itself). Matching a concrete topic walks
// the exact child and the '+' child at every level, so cost is
// O(depth × branching of wildcards + matches) and — unlike a linear
// scan over all subscriptions — independent of the total subscription
// count. Topics and patterns are walked with cutSeg (substrings of the
// original string), so matching allocates nothing.
//
// Children live in a slice sorted by segment, not a map: cloning a node
// on the copy-on-write path is then one memmove instead of rehashing
// every key (a 1000-child node clones in ~1µs rather than ~100µs), and
// matching binary-searches without touching the hash. The slice is the
// right shape for snapshots — wide nodes are cheap to copy and the
// publish path never mutates.
//
// Immutability invariants: a node reachable from a published root is
// never mutated. trieInsert/trieRemove clone every node they touch
// (children slice copied, entry slices replaced wholesale), so
// concurrent matchers iterating an old snapshot see a frozen, complete
// tree. Mutations are serialized by the broker (subMu); only the
// matchers are concurrent.
//
//dewsvet:immutable
type trieNode struct {
	// children holds exact-segment subtrees, sorted by segment.
	children []trieChild
	// plus is the subtree for the '+' single-segment wildcard.
	plus *trieNode
	// subs holds entries whose pattern ends exactly at this node.
	subs []*subEntry
	// hashSubs holds entries whose pattern ends with '#' at this level;
	// they match any remainder, including none.
	hashSubs []*subEntry
}

// trieChild binds one exact segment to its subtree. Like trieNode it is
// frozen once reachable from a published root.
//
//dewsvet:immutable
type trieChild struct {
	// seg is a substring of some registered pattern, which the tree
	// retains via subEntry anyway, so storing it directly pins nothing
	// extra.
	seg  string
	node *trieNode
}

// childPos binary-searches children for seg, returning its position and
// whether it is present (when absent, pos is the insertion point).
func (n *trieNode) childPos(seg string) (int, bool) {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.children[mid].seg < seg {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.children) && n.children[lo].seg == seg
}

// child returns the subtree for an exact segment, or nil.
func (n *trieNode) child(seg string) *trieNode {
	if pos, ok := n.childPos(seg); ok {
		return n.children[pos].node
	}
	return nil
}

// empty reports whether the node holds no entries and no subtrees.
func (n *trieNode) empty() bool {
	return len(n.subs) == 0 && len(n.hashSubs) == 0 && len(n.children) == 0 && n.plus == nil
}

// clone returns a shallow copy safe to mutate: the children slice is
// copied (subtrees still shared), entry slices are shared until
// replaced. Cloning nil yields a fresh empty node, so insertion grows
// the tree without nil special cases.
func (n *trieNode) clone() *trieNode {
	if n == nil {
		return &trieNode{}
	}
	c := &trieNode{plus: n.plus, subs: n.subs, hashSubs: n.hashSubs}
	if len(n.children) > 0 {
		c.children = make([]trieChild, len(n.children))
		copy(c.children, n.children)
	}
	return c
}

// appendEntry returns a fresh slice with e appended. The copy is what
// makes snapshots safe: the old slice (shared by the previous root) is
// never written, even in its spare capacity.
func appendEntry(s []*subEntry, e *subEntry) []*subEntry {
	out := make([]*subEntry, len(s)+1)
	copy(out, s)
	out[len(s)] = e
	return out
}

// removeEntry returns a fresh slice without the entry of the given id
// (nil when that empties it).
func removeEntry(s []*subEntry, id int) []*subEntry {
	for i, e := range s {
		if e.id == id {
			if len(s) == 1 {
				return nil
			}
			out := make([]*subEntry, 0, len(s)-1)
			out = append(out, s[:i]...)
			return append(out, s[i+1:]...)
		}
	}
	return s
}

// trieInsert returns a new root with e registered under its (already
// validated) pattern; rest is the unconsumed pattern remainder and has
// reports whether any segments remain. The old root is untouched.
func trieInsert(n *trieNode, rest string, has bool, e *subEntry) *trieNode {
	c := n.clone()
	if !has {
		c.subs = appendEntry(c.subs, e)
		return c
	}
	seg, next, more := cutSeg(rest)
	switch seg {
	case "#": // validated: always the final segment
		c.hashSubs = appendEntry(c.hashSubs, e)
	case "+":
		c.plus = trieInsert(c.plus, next, more, e)
	default:
		pos, ok := c.childPos(seg)
		if ok {
			c.children[pos].node = trieInsert(c.children[pos].node, next, more, e)
			break
		}
		child := trieInsert(nil, next, more, e)
		cs := make([]trieChild, len(c.children)+1)
		copy(cs, c.children[:pos])
		cs[pos] = trieChild{seg: seg, node: child}
		copy(cs[pos+1:], c.children[pos:])
		c.children = cs
	}
	return c
}

// trieRemove returns a new root without the entry of the given id under
// the pattern, pruning emptied branches; nil means the whole subtree is
// gone. The old root is untouched.
func trieRemove(n *trieNode, rest string, has bool, id int) *trieNode {
	if n == nil {
		return nil
	}
	c := n.clone()
	if !has {
		c.subs = removeEntry(c.subs, id)
	} else {
		seg, next, more := cutSeg(rest)
		switch seg {
		case "#":
			c.hashSubs = removeEntry(c.hashSubs, id)
		case "+":
			c.plus = trieRemove(c.plus, next, more, id)
		default:
			if pos, ok := c.childPos(seg); ok {
				if child := trieRemove(c.children[pos].node, next, more, id); child != nil {
					c.children[pos].node = child
				} else {
					// Splicing in place is safe: clone gave us a fresh
					// slice no snapshot shares.
					c.children = append(c.children[:pos], c.children[pos+1:]...)
				}
			}
		}
	}
	if c.empty() {
		return nil
	}
	return c
}

// trieMatch appends every entry whose pattern matches the concrete
// topic to dst and returns the extended slice. Each matching entry is
// visited exactly once: patterns live at a single node, and the walk
// reaches each node along at most one path. Safe on any snapshot,
// including nil (the empty tree).
func trieMatch(n *trieNode, rest string, has bool, dst []*subEntry) []*subEntry {
	if n == nil {
		return dst
	}
	// '#' at this level covers any remainder, including none.
	dst = append(dst, n.hashSubs...)
	if !has {
		return append(dst, n.subs...)
	}
	seg, next, more := cutSeg(rest)
	if child := n.child(seg); child != nil {
		dst = trieMatch(child, next, more, dst)
	}
	if n.plus != nil {
		dst = trieMatch(n.plus, next, more, dst)
	}
	return dst
}
