package core

import "strings"

// topicTree is a segment-based subscription index. Each pattern is
// inserted once, at the node its segments lead to; '+' descends into a
// dedicated single-level child, '#' terminates at the node covering its
// parent level (MQTT semantics: "obs/#" matches "obs" itself). Matching
// a concrete topic walks the exact child and the '+' child at every
// level, so cost is O(depth × branching of wildcards + matches) and —
// unlike a linear scan over all subscriptions — independent of the
// total subscription count.
type topicTree struct {
	root *trieNode
}

type trieNode struct {
	// children maps an exact segment to its subtree.
	children map[string]*trieNode
	// plus is the subtree for the '+' single-segment wildcard.
	plus *trieNode
	// subs holds entries whose pattern ends exactly at this node.
	subs map[int]*subEntry
	// hashSubs holds entries whose pattern ends with '#' at this level;
	// they match any remainder, including none.
	hashSubs map[int]*subEntry
}

func newTopicTree() *topicTree {
	return &topicTree{root: &trieNode{}}
}

func newTrieNode() *trieNode { return &trieNode{} }

// empty reports whether the node holds no entries and no subtrees.
func (n *trieNode) empty() bool {
	return len(n.subs) == 0 && len(n.hashSubs) == 0 && len(n.children) == 0 && n.plus == nil
}

// insert registers an entry under its (already validated) pattern.
func (t *topicTree) insert(pattern string, e *subEntry) {
	node := t.root
	for _, seg := range strings.Split(pattern, "/") {
		if seg == "#" { // validated: always the final segment
			if node.hashSubs == nil {
				node.hashSubs = make(map[int]*subEntry)
			}
			node.hashSubs[e.id] = e
			return
		}
		var next *trieNode
		if seg == "+" {
			if node.plus == nil {
				node.plus = newTrieNode()
			}
			next = node.plus
		} else {
			if node.children == nil {
				node.children = make(map[string]*trieNode)
			}
			next = node.children[seg]
			if next == nil {
				next = newTrieNode()
				node.children[seg] = next
			}
		}
		node = next
	}
	if node.subs == nil {
		node.subs = make(map[int]*subEntry)
	}
	node.subs[e.id] = e
}

// remove deletes an entry by pattern and id, pruning empty branches.
func (t *topicTree) remove(pattern string, id int) {
	t.removeFrom(t.root, strings.Split(pattern, "/"), id)
}

func (t *topicTree) removeFrom(node *trieNode, segs []string, id int) bool {
	if len(segs) == 0 {
		delete(node.subs, id)
		return node.empty()
	}
	seg := segs[0]
	switch seg {
	case "#":
		delete(node.hashSubs, id)
	case "+":
		if node.plus != nil && t.removeFrom(node.plus, segs[1:], id) {
			node.plus = nil
		}
	default:
		if child := node.children[seg]; child != nil && t.removeFrom(child, segs[1:], id) {
			delete(node.children, seg)
		}
	}
	return node.empty()
}

// match appends every entry whose pattern matches the concrete topic to
// dst and returns the extended slice. Each matching entry is visited
// exactly once: patterns live at a single node, and the walk reaches
// each node along at most one path.
func (t *topicTree) match(topic string, dst []*subEntry) []*subEntry {
	return t.matchFrom(t.root, strings.Split(topic, "/"), dst)
}

func (t *topicTree) matchFrom(node *trieNode, segs []string, dst []*subEntry) []*subEntry {
	// '#' at this level covers any remainder, including none.
	for _, e := range node.hashSubs {
		dst = append(dst, e)
	}
	if len(segs) == 0 {
		for _, e := range node.subs {
			dst = append(dst, e)
		}
		return dst
	}
	if child, ok := node.children[segs[0]]; ok {
		dst = t.matchFrom(child, segs[1:], dst)
	}
	if node.plus != nil {
		dst = t.matchFrom(node.plus, segs[1:], dst)
	}
	return dst
}
