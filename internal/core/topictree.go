package core

// topicTree is a segment-based subscription index. Each pattern is
// inserted once, at the node its segments lead to; '+' descends into a
// dedicated single-level child, '#' terminates at the node covering its
// parent level (MQTT semantics: "obs/#" matches "obs" itself). Matching
// a concrete topic walks the exact child and the '+' child at every
// level, so cost is O(depth × branching of wildcards + matches) and —
// unlike a linear scan over all subscriptions — independent of the
// total subscription count. Topics and patterns are walked with cutSeg
// (substrings of the original string), so no tree operation allocates a
// segment slice.
type topicTree struct {
	root *trieNode
}

type trieNode struct {
	// children maps an exact segment to its subtree.
	children map[string]*trieNode
	// plus is the subtree for the '+' single-segment wildcard.
	plus *trieNode
	// subs holds entries whose pattern ends exactly at this node.
	subs map[int]*subEntry
	// hashSubs holds entries whose pattern ends with '#' at this level;
	// they match any remainder, including none.
	hashSubs map[int]*subEntry
}

func newTopicTree() *topicTree {
	return &topicTree{root: &trieNode{}}
}

func newTrieNode() *trieNode { return &trieNode{} }

// empty reports whether the node holds no entries and no subtrees.
func (n *trieNode) empty() bool {
	return len(n.subs) == 0 && len(n.hashSubs) == 0 && len(n.children) == 0 && n.plus == nil
}

// insert registers an entry under its (already validated) pattern.
func (t *topicTree) insert(pattern string, e *subEntry) {
	node := t.root
	for rest, more := pattern, true; more; {
		var seg string
		seg, rest, more = cutSeg(rest)
		if seg == "#" { // validated: always the final segment
			if node.hashSubs == nil {
				node.hashSubs = make(map[int]*subEntry)
			}
			node.hashSubs[e.id] = e
			return
		}
		var next *trieNode
		if seg == "+" {
			if node.plus == nil {
				node.plus = newTrieNode()
			}
			next = node.plus
		} else {
			if node.children == nil {
				node.children = make(map[string]*trieNode)
			}
			next = node.children[seg]
			if next == nil {
				next = newTrieNode()
				// The map key must not alias a caller-held string's
				// backing array beyond the pattern itself; seg is a
				// substring of pattern, which the tree already retains
				// via subEntry, so storing it directly is fine.
				node.children[seg] = next
			}
		}
		node = next
	}
	if node.subs == nil {
		node.subs = make(map[int]*subEntry)
	}
	node.subs[e.id] = e
}

// remove deletes an entry by pattern and id, pruning empty branches.
func (t *topicTree) remove(pattern string, id int) {
	t.removeFrom(t.root, pattern, true, id)
}

// removeFrom recurses along the pattern's segments; rest is the
// unconsumed remainder and has reports whether any segments remain.
func (t *topicTree) removeFrom(node *trieNode, rest string, has bool, id int) bool {
	if !has {
		delete(node.subs, id)
		return node.empty()
	}
	seg, next, more := cutSeg(rest)
	switch seg {
	case "#":
		delete(node.hashSubs, id)
	case "+":
		if node.plus != nil && t.removeFrom(node.plus, next, more, id) {
			node.plus = nil
		}
	default:
		if child := node.children[seg]; child != nil && t.removeFrom(child, next, more, id) {
			delete(node.children, seg)
		}
	}
	return node.empty()
}

// match appends every entry whose pattern matches the concrete topic to
// dst and returns the extended slice. Each matching entry is visited
// exactly once: patterns live at a single node, and the walk reaches
// each node along at most one path.
func (t *topicTree) match(topic string, dst []*subEntry) []*subEntry {
	return t.matchFrom(t.root, topic, true, dst)
}

// matchFrom recurses along the topic's segments; rest is the unconsumed
// remainder and has reports whether any segments remain.
func (t *topicTree) matchFrom(node *trieNode, rest string, has bool, dst []*subEntry) []*subEntry {
	// '#' at this level covers any remainder, including none.
	for _, e := range node.hashSubs {
		dst = append(dst, e)
	}
	if !has {
		for _, e := range node.subs {
			dst = append(dst, e)
		}
		return dst
	}
	seg, next, more := cutSeg(rest)
	if child, ok := node.children[seg]; ok {
		dst = t.matchFrom(child, next, more, dst)
	}
	if node.plus != nil {
		dst = t.matchFrom(node.plus, next, more, dst)
	}
	return dst
}
