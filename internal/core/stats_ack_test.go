package core

import (
	"testing"
)

// TestStatsDropsSurviveUnsubscribe: removing a subscription must not
// erase its backpressure losses from the broker totals — /stats readers
// (the gateway) rely on Drops being cumulative.
func TestStatsDropsSurviveUnsubscribe(t *testing.T) {
	b := NewBroker()
	sub, err := b.Subscribe("obs/#", 1, DropNewest)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(Message{Topic: "obs/x", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Stats().Drops; got != 2 {
		t.Fatalf("drops before unsubscribe = %d, want 2", got)
	}
	b.Unsubscribe(sub)
	st := b.Stats()
	if st.Drops != 2 {
		t.Errorf("drops after unsubscribe = %d, want 2 (cumulative)", st.Drops)
	}
	if st.Subscriptions != 0 {
		t.Errorf("subscriptions = %d, want 0", st.Subscriptions)
	}
}

// TestStatsDropsSurviveAckUnsubscribe: same cumulative guarantee for the
// at-least-once tier.
func TestStatsDropsSurviveAckUnsubscribe(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("alert/#", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := b.Publish(Message{Topic: "alert/x", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	if sub.Dropped() != 3 {
		t.Fatalf("sub dropped = %d, want 3", sub.Dropped())
	}
	b.UnsubscribeAck(sub)
	if got := b.Stats().Drops; got != 3 {
		t.Errorf("broker drops after ack unsubscribe = %d, want 3", got)
	}
}

// TestStatsDispatchWorkers: the stats snapshot reports the push-mode
// pool size while running and 0 once stopped.
func TestStatsDispatchWorkers(t *testing.T) {
	b := NewBroker()
	if got := b.Stats().DispatchWorkers; got != 0 {
		t.Fatalf("workers before start = %d", got)
	}
	b.StartDispatch(3)
	if got := b.Stats().DispatchWorkers; got != 3 {
		t.Errorf("workers while running = %d, want 3", got)
	}
	b.StopDispatch()
	if got := b.Stats().DispatchWorkers; got != 0 {
		t.Errorf("workers after stop = %d, want 0", got)
	}
}

// TestAckRedeliverAfterUnsubscribe: UnsubscribeAck promises that queued
// and in-flight deliveries stay fetchable so a consumer can finish
// outstanding work. Redeliver after close must return in-flight work to
// the queue, in sequence order, and Ack must still function.
func TestAckRedeliverAfterUnsubscribe(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("job/#", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Publish(Message{Topic: "job/x", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	ds := sub.Fetch(0)
	if len(ds) != 3 {
		t.Fatalf("fetched %d, want 3", len(ds))
	}
	b.UnsubscribeAck(sub)

	// The mailbox is closed: new publishes must not land.
	if _, err := b.Publish(Message{Topic: "job/x", Payload: 99}); err != nil {
		t.Fatal(err)
	}
	if q, inflight := sub.Pending(); q != 0 || inflight != 3 {
		t.Fatalf("pending after close = %d/%d, want 0/3", q, inflight)
	}

	// Ack one in-flight delivery, return the rest.
	if err := sub.Ack(ds[0].Seq); err != nil {
		t.Fatalf("ack after close: %v", err)
	}
	if n := sub.Redeliver(); n != 2 {
		t.Fatalf("redelivered %d, want 2", n)
	}
	again := sub.Fetch(0)
	if len(again) != 2 {
		t.Fatalf("refetched %d, want 2", len(again))
	}
	if again[0].Seq != ds[1].Seq || again[1].Seq != ds[2].Seq {
		t.Errorf("redelivery order broken: %v", again)
	}
	for _, d := range again {
		if err := sub.Ack(d.Seq); err != nil {
			t.Errorf("ack %d after redeliver: %v", d.Seq, err)
		}
	}
	if sub.Acked() != 3 {
		t.Errorf("acked = %d, want 3", sub.Acked())
	}
}

// TestRetainedLimit: beyond the cap, new topics deliver but are not
// retained; already-retained topics keep updating.
func TestRetainedLimit(t *testing.T) {
	b := NewBroker()
	b.SetRetainedLimit(2)
	sub, err := b.Subscribe("t/#", 10, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range []string{"t/a", "t/b", "t/c"} {
		if _, err := b.Publish(Message{Topic: topic, Payload: topic}); err != nil {
			t.Fatal(err)
		}
	}
	// Delivery is unaffected by the cap.
	if got := len(sub.Poll(0)); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
	if _, ok := b.Retained("t/c"); ok {
		t.Error("t/c retained beyond the limit")
	}
	// Existing topics still update.
	if _, err := b.Publish(Message{Topic: "t/a", Payload: "new"}); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Retained("t/a")
	if !ok || m.Payload != "new" {
		t.Errorf("t/a retained = %v %v", m.Payload, ok)
	}
	// Batch path honors the cap too.
	if _, err := b.PublishBatch([]Message{{Topic: "t/d", Payload: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Retained("t/d"); ok {
		t.Error("t/d retained beyond the limit via batch")
	}
}

// TestAckRedeliverAfterCloseEmpty: redeliver on a closed, fully drained
// subscription is a harmless no-op.
func TestAckRedeliverAfterCloseEmpty(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("job/#", 10)
	if err != nil {
		t.Fatal(err)
	}
	b.UnsubscribeAck(sub)
	if n := sub.Redeliver(); n != 0 {
		t.Errorf("redeliver on empty closed sub = %d, want 0", n)
	}
	if ds := sub.Fetch(0); len(ds) != 0 {
		t.Errorf("fetch on empty closed sub = %v", ds)
	}
}
