package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/climate"
	"repro/internal/ik"
	"repro/internal/ontology/drought"
	"repro/internal/ontology/ssn"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/wsn"
)

func TestTopicMatch(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"obs/mangaung/Rainfall", "obs/mangaung/Rainfall", true},
		{"obs/+/Rainfall", "obs/mangaung/Rainfall", true},
		{"obs/+/Rainfall", "obs/xhariep/Rainfall", true},
		{"obs/+/Rainfall", "obs/mangaung/SoilMoisture", false},
		{"obs/#", "obs/mangaung/Rainfall", true},
		{"obs/#", "obs", true}, // '#' matches the parent level too (MQTT semantics)
		{"obs/#", "other", false},
		{"#", "anything/at/all", true},
		{"obs/+", "obs/mangaung/Rainfall", false},
		{"obs/mangaung", "obs/mangaung/Rainfall", false},
		{"event/+/DroughtWarning", "event/xhariep/DroughtWarning", true},
	}
	for _, c := range cases {
		if got := TopicMatch(c.pattern, c.topic); got != c.want {
			t.Errorf("TopicMatch(%q, %q) = %v, want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

func TestValidatePattern(t *testing.T) {
	good := []string{"a/b/c", "a/+/c", "a/#", "#", "+"}
	for _, p := range good {
		if err := ValidatePattern(p); err != nil {
			t.Errorf("ValidatePattern(%q) = %v", p, err)
		}
	}
	bad := []string{"", "a//b", "a/#/b", "a/b+", "a/#b"}
	for _, p := range bad {
		if err := ValidatePattern(p); err == nil {
			t.Errorf("ValidatePattern(%q) should fail", p)
		}
	}
}

func TestMessageValidate(t *testing.T) {
	if err := (Message{Topic: "a/b"}).Validate(); err != nil {
		t.Error(err)
	}
	for _, topic := range []string{"", "a//b", "a/+/b", "a/#"} {
		if err := (Message{Topic: topic}).Validate(); err == nil {
			t.Errorf("topic %q should be invalid for publish", topic)
		}
	}
}

func TestBrokerPubSub(t *testing.T) {
	b := NewBroker()
	sub, err := b.Subscribe("obs/+/Rainfall", 10, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(Message{Topic: "obs/mangaung/Rainfall", Payload: 1.5})
	if err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	if _, err := b.Publish(Message{Topic: "obs/mangaung/SoilMoisture", Payload: 0.2}); err != nil {
		t.Fatal(err)
	}
	msgs := sub.Poll(0)
	if len(msgs) != 1 || msgs[0].Payload != 1.5 {
		t.Fatalf("Poll = %v", msgs)
	}
	if sub.Pending() != 0 {
		t.Error("queue should be drained")
	}
}

func TestBrokerBackpressureDropOldest(t *testing.T) {
	b := NewBroker()
	sub, _ := b.Subscribe("x/#", 3, DropOldest)
	for i := 0; i < 5; i++ {
		if _, err := b.Publish(Message{Topic: "x/t", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := sub.Poll(0)
	if len(msgs) != 3 {
		t.Fatalf("queued = %d, want 3", len(msgs))
	}
	if msgs[0].Payload != 2 || msgs[2].Payload != 4 {
		t.Errorf("oldest should be dropped: %v", msgs)
	}
	if sub.Dropped() != 2 {
		t.Errorf("dropped = %d", sub.Dropped())
	}
}

func TestBrokerBackpressureDropNewest(t *testing.T) {
	b := NewBroker()
	sub, _ := b.Subscribe("x/#", 2, DropNewest)
	for i := 0; i < 4; i++ {
		if _, err := b.Publish(Message{Topic: "x/t", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	msgs := sub.Poll(0)
	if len(msgs) != 2 || msgs[0].Payload != 0 || msgs[1].Payload != 1 {
		t.Errorf("DropNewest should keep the first messages: %v", msgs)
	}
}

func TestBrokerRetainedReplay(t *testing.T) {
	b := NewBroker()
	if _, err := b.Publish(Message{Topic: "obs/mangaung/Rainfall", Payload: 7.0}); err != nil {
		t.Fatal(err)
	}
	// A late subscriber receives the retained message.
	sub, _ := b.Subscribe("obs/#", 10, DropOldest)
	msgs := sub.Poll(0)
	if len(msgs) != 1 || msgs[0].Payload != 7.0 {
		t.Fatalf("retained replay = %v", msgs)
	}
	got, ok := b.Retained("obs/mangaung/Rainfall")
	if !ok || got.Payload != 7.0 {
		t.Error("Retained lookup failed")
	}
}

func TestBrokerUnsubscribe(t *testing.T) {
	b := NewBroker()
	sub, _ := b.Subscribe("x/#", 5, DropOldest)
	b.Unsubscribe(sub)
	if _, err := b.Publish(Message{Topic: "x/y", Payload: 1}); err != nil {
		t.Fatal(err)
	}
	if sub.Pending() != 0 {
		t.Error("closed subscription received a message")
	}
	if b.Stats().Subscriptions != 0 {
		t.Error("subscription not removed")
	}
	b.Unsubscribe(nil) // must not panic
}

func TestBrokerStats(t *testing.T) {
	b := NewBroker()
	s1, _ := b.Subscribe("a/#", 5, DropOldest)
	s2, _ := b.Subscribe("a/b", 5, DropOldest)
	if _, err := b.Publish(Message{Topic: "a/b"}); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Published != 1 || st.Deliveries != 2 || st.Subscriptions != 2 {
		t.Errorf("stats = %+v", st)
	}
	_ = s1
	_ = s2
}

func TestBrokerConcurrentPublish(t *testing.T) {
	b := NewBroker()
	sub, _ := b.Subscribe("load/#", 100000, DropOldest)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, _ = b.Publish(Message{Topic: fmt.Sprintf("load/%d", w), Payload: i})
			}
		}(w)
	}
	wg.Wait()
	if got := sub.Delivered(); got != 4000 {
		t.Errorf("delivered = %d, want 4000", got)
	}
}

// buildMiddleware assembles a middleware over the real ontology with
// sensor + IK rules.
func buildMiddleware(t *testing.T) *Middleware {
	t.Helper()
	o, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	rules := cep.MustParseRules(`
RULE rainfall-deficit
WHEN avg(Rainfall) < 0.8 OVER 30d
COOLDOWN 14d
EMIT RainfallDeficit SEVERITY watch CONFIDENCE 0.75 SOURCE sensor

RULE soil-decline
WHEN avg(SoilMoisture) < 0.18 OVER 20d
COOLDOWN 14d
EMIT SoilMoistureDecline SEVERITY warning CONFIDENCE 0.8 SOURCE sensor
`)
	ikRules, err := ik.CompileRules(ik.Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Ontology: o, Rules: append(rules, ikRules...), GraphObservations: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMiddlewareRequiresOntology(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("middleware without ontology should fail")
	}
}

func TestMiddlewareIngestCycle(t *testing.T) {
	m := buildMiddleware(t)

	// Fill a cloud store via the WSN substrate.
	cloud := wsn.NewCloudStore()
	link := wsn.NewLink(wsn.LinkConfig{LossRate: 0.1, MaxRetries: 3, Seed: 7})
	gw := wsn.NewGateway(link, cloud)
	fleet, err := wsn.NewFleet(6, []string{"mangaung", "xhariep"}, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fleet.Nodes {
		gw.Register(n)
	}
	gen, err := climate.NewGenerator(climate.DefaultParams(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range gen.GenerateDays(40) {
		for _, n := range fleet.Nodes {
			if rs := n.Sample(day); len(rs) > 0 {
				if err := gw.Ingest(rs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := m.Protocol().AddSource("freestate-cloud", cloud); err != nil {
		t.Fatal(err)
	}

	obsSub, _ := m.Broker().Subscribe("obs/#", 100000, DropOldest)
	rep, err := m.Ingest(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fetched == 0 || rep.Annotated == 0 {
		t.Fatalf("ingest report = %+v", rep)
	}
	if rep.Annotated+rep.Failed != rep.Fetched {
		t.Errorf("ingest accounting broken: %+v", rep)
	}
	msgs := obsSub.Poll(0)
	if len(msgs) != rep.Annotated {
		t.Errorf("published %d observation messages, want %d", len(msgs), rep.Annotated)
	}
	// Observations landed in the data graph and are queryable.
	sols, err := m.Segment().Select(`
PREFIX ssn: <http://dews.africrid.example/ontology/ssn#>
SELECT ?obs WHERE { ?obs a ssn:Observation . } LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Rows) == 0 {
		t.Error("no observations queryable via SPARQL")
	}
	// Cursor advanced: second ingest fetches nothing.
	rep2, err := m.Ingest(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fetched != 0 {
		t.Errorf("second ingest should be empty, got %+v", rep2)
	}
}

func TestMiddlewareInferenceFlow(t *testing.T) {
	m := buildMiddleware(t)
	cloud := wsn.NewCloudStore()
	if err := m.Protocol().AddSource("c", cloud); err != nil {
		t.Fatal(err)
	}
	evSub, _ := m.Broker().Subscribe("event/#", 10000, DropOldest)

	// Inject a synthetic bone-dry month directly into the cloud.
	start := time.Date(2015, 11, 1, 6, 0, 0, 0, time.UTC)
	var batch []wsn.RawReading
	for d := 0; d < 35; d++ {
		batch = append(batch, wsn.RawReading{
			NodeID: "n1", Vendor: "libelium", District: "mangaung",
			PropertyName: "pluviometer", UnitName: "mm", Value: 0,
			Time: start.AddDate(0, 0, d), Seq: uint32(d + 1), BatteryV: 4,
		})
	}
	cloud.Upload(batch)
	rep, err := m.Ingest(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inferences == 0 {
		t.Fatal("a dry month must trigger the rainfall-deficit rule")
	}
	events := evSub.Poll(0)
	found := false
	for _, msg := range events {
		if msg.Headers["rule"] == "rainfall-deficit" {
			found = true
			if msg.Headers["severity"] != "watch" {
				t.Errorf("severity header = %q", msg.Headers["severity"])
			}
		}
	}
	if !found {
		t.Error("RainfallDeficit event not published")
	}
	// The inference is also in the RDF graph with provenance.
	sols, err := m.Segment().Select(`
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?e WHERE { ?e a dews:RainfallDeficit . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Rows) == 0 {
		t.Error("inference not materialized in graph")
	}
}

func TestMiddlewareIKFlow(t *testing.T) {
	m := buildMiddleware(t)
	ikSub, _ := m.Broker().Subscribe("ik/#", 1000, DropOldest)
	evSub, _ := m.Broker().Subscribe("event/+/IKDrySignal", 1000, DropOldest)

	start := time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC)
	var reports []ik.Report
	for i := 0; i < 3; i++ {
		reports = append(reports, ik.Report{
			Informant: fmt.Sprintf("elder-%d", i),
			Indicator: "mutiga-flowering",
			District:  "xhariep",
			Time:      start.AddDate(0, 0, i*2),
			Strength:  0.8,
		})
	}
	inf, err := m.PublishIKReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ikSub.Poll(0)); got != 3 {
		t.Errorf("ik messages = %d, want 3", got)
	}
	if inf == 0 {
		t.Fatal("corroborated mutiga reports must produce an IK inference")
	}
	if got := len(evSub.Poll(0)); got == 0 {
		t.Error("IKDrySignal not published")
	}
}

func TestIKReportsMaterializedAsRDF(t *testing.T) {
	m := buildMiddleware(t)
	start := time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC)
	reports := []ik.Report{
		{Informant: "mme-dikeledi", Indicator: "mutiga-flowering", District: "xhariep",
			Time: start, Strength: 0.9},
		{Informant: "ntate-thabo", Indicator: "moon-halo", District: "xhariep",
			Time: start.AddDate(0, 0, 1), Strength: 0.6},
	}
	if _, err := m.PublishIKReports(reports); err != nil {
		t.Fatal(err)
	}
	// The reports are typed by the ontology classes and carry provenance.
	sols, err := m.Segment().Select(`
PREFIX ik: <http://dews.africrid.example/ontology/ik#>
SELECT ?r ?who ?rel WHERE {
  ?r a ik:MutigaTreeFlowering ; ik:reportedBy ?who .
  ?who ik:reliability ?rel .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Rows) != 1 {
		t.Fatalf("rows = %d: %s", len(sols.Rows), sols)
	}
	rel, _ := sols.Rows[0][sparql.Var("rel")].(rdf.Literal).Float()
	if rel <= 0 || rel > 1 {
		t.Errorf("reliability = %v", rel)
	}
	// Aggregate across reports: how many signs per district?
	agg, err := m.Segment().Select(`
PREFIX ik:   <http://dews.africrid.example/ontology/ik#>
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?where (COUNT(*) AS ?n) WHERE {
  ?r ik:reportedBy ?who ; dews:affectsRegion ?where .
} GROUP BY ?where`)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Rows) != 1 {
		t.Fatalf("agg rows = %d", len(agg.Rows))
	}
	if n, _ := agg.Rows[0][sparql.Var("n")].(rdf.Literal).Int(); n != 2 {
		t.Errorf("reports in xhariep = %d, want 2", n)
	}
}

func TestServiceRegistryDiscovery(t *testing.T) {
	m := buildMiddleware(t)
	seg := m.Segment()
	err := seg.RegisterService(ServiceDescription{
		ID:          rdf.NSDEWS.IRI("svc/met-forecast"),
		Capability:  drought.MeteorologicalDrought,
		Endpoint:    "event/+/MeteorologicalDrought",
		Description: "Meteorological drought inference feed",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = seg.RegisterService(ServiceDescription{
		ID:         rdf.NSDEWS.IRI("svc/agri-forecast"),
		Capability: drought.AgriculturalDrought,
		Endpoint:   "event/+/AgriculturalDrought",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Discovery by the superclass finds both (subsumption-aware).
	found := seg.Discover(drought.DroughtEvent)
	if len(found) != 2 {
		t.Fatalf("Discover(DroughtEvent) = %d, want 2", len(found))
	}
	// Exact capability finds one.
	if got := seg.Discover(drought.AgriculturalDrought); len(got) != 1 {
		t.Errorf("Discover(Agricultural) = %d", len(got))
	}
	// Registered services are queryable via SPARQL.
	sols, err := seg.Select(`
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?s ?e WHERE { ?s a dews:SemanticService ; dews:endpoint ?e . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Rows) != 2 {
		t.Errorf("SPARQL service rows = %d", len(sols.Rows))
	}
	if len(seg.Services()) != 2 {
		t.Error("Services() listing wrong")
	}
	// Invalid descriptions rejected.
	if err := seg.RegisterService(ServiceDescription{}); err == nil {
		t.Error("empty service should be rejected")
	}
}

func TestProtocolLayer(t *testing.T) {
	p := NewProtocolLayer()
	c1, c2 := wsn.NewCloudStore(), wsn.NewCloudStore()
	now := time.Now().UTC()
	c1.Upload([]wsn.RawReading{{NodeID: "a", Time: now}, {NodeID: "b", Time: now}})
	c2.Upload([]wsn.RawReading{{NodeID: "c", Time: now}})
	if err := p.AddSource("one", c1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource("two", c2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSource("one", c1); err == nil {
		t.Error("duplicate source should fail")
	}
	if err := p.AddSource("", nil); err == nil {
		t.Error("nil source should fail")
	}
	all, err := p.FetchAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("FetchAll = %d", len(all))
	}
	if p.Fetched("one") != 2 || p.Fetched("two") != 1 {
		t.Error("fetch accounting wrong")
	}
	// Incremental: nothing new.
	again, err := p.FetchAll(0)
	if err != nil || len(again) != 0 {
		t.Fatalf("second fetch = %d, %v", len(again), err)
	}
	// New upload appears.
	c1.Upload([]wsn.RawReading{{NodeID: "d", Time: now}})
	more, err := p.Fetch("one", 0)
	if err != nil || len(more) != 1 {
		t.Fatalf("incremental fetch = %d, %v", len(more), err)
	}
	if _, err := p.Fetch("ghost", 0); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestCEPShardsPerDistrict(t *testing.T) {
	m := buildMiddleware(t)
	e1, err := m.Segment().CEPEngine("mangaung")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.Segment().CEPEngine("xhariep")
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Fatal("districts must get separate shards")
	}
	again, _ := m.Segment().CEPEngine("mangaung")
	if again != e1 {
		t.Fatal("shard must be cached")
	}
	keys := m.Segment().CEPKeys()
	if len(keys) != 2 || keys[0] != "mangaung" {
		t.Errorf("CEPKeys = %v", keys)
	}
}

func TestTopicBuilders(t *testing.T) {
	if TopicObservation("mangaung", "Rainfall") != "obs/mangaung/Rainfall" {
		t.Error("TopicObservation")
	}
	if TopicEvent("x", "E") != "event/x/E" {
		t.Error("TopicEvent")
	}
	if TopicIK("x", "mutiga") != "ik/x/mutiga" {
		t.Error("TopicIK")
	}
	if TopicBulletin("x") != "bulletin/x" {
		t.Error("TopicBulletin")
	}
}

func TestObservationRecordRoundTripThroughBroker(t *testing.T) {
	m := buildMiddleware(t)
	sub, _ := m.Broker().Subscribe("obs/#", 10, DropOldest)
	rec := ssn.Record{
		ID:       rdf.NSOBS.IRI("x/1"),
		Property: drought.Rainfall,
		Value:    3.5,
		Time:     time.Now().UTC(),
		Quality:  0.9,
	}
	if _, err := m.Broker().Publish(Message{
		Topic:   TopicObservation("mangaung", "Rainfall"),
		Payload: rec,
	}); err != nil {
		t.Fatal(err)
	}
	msgs := sub.Poll(0)
	if len(msgs) != 1 {
		t.Fatal("no message")
	}
	got, ok := msgs[0].Payload.(ssn.Record)
	if !ok || got.Value != 3.5 {
		t.Errorf("payload = %#v", msgs[0].Payload)
	}
}
