package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ik"
	"repro/internal/wsn"
)

// TestAckSubscriptionConcurrent exercises the at-least-once path under
// concurrent publishers and a concurrent fetch/ack/redeliver consumer —
// the shape a real SMS channel worker has. Run with -race.
func TestAckSubscriptionConcurrent(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("load/#", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 4
		perWriter = 500
		totalMsgs = writers * perWriter
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := b.Publish(Message{Topic: fmt.Sprintf("load/%d", w), Payload: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Consumer: fetch batches, ack half, redeliver the rest, repeat.
	consumed := make(map[uint64]bool)
	var consumedMu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ds := sub.Fetch(64)
			if len(ds) == 0 {
				consumedMu.Lock()
				n := len(consumed)
				consumedMu.Unlock()
				if n >= totalMsgs {
					return
				}
				sub.Redeliver()
				continue
			}
			for i, d := range ds {
				if i%2 == 0 {
					if err := sub.Ack(d.Seq); err != nil {
						t.Error(err)
						return
					}
					consumedMu.Lock()
					consumed[d.Seq] = true
					consumedMu.Unlock()
				}
			}
			sub.Redeliver()
		}
	}()
	wg.Wait()
	<-done
	if len(consumed) != totalMsgs {
		t.Fatalf("consumed %d of %d", len(consumed), totalMsgs)
	}
	if sub.Dropped() != 0 {
		t.Errorf("dropped %d with ample capacity", sub.Dropped())
	}
}

// TestSegmentConcurrentQueryAndCEP runs SPARQL queries concurrently with
// CEP shard creation and service registration. Run with -race.
func TestSegmentConcurrentQueryAndCEP(t *testing.T) {
	m := buildMiddleware(t)
	seg := m.Segment()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := seg.Select(`
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?c WHERE { ?c rdfs:subClassOf dews:DroughtEvent . }`); err != nil {
					t.Error(err)
					return
				}
				if _, err := seg.CEPEngine(fmt.Sprintf("district-%d-%d", w, i%5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(seg.CEPKeys()) != 20 {
		t.Errorf("shards = %d, want 20", len(seg.CEPKeys()))
	}
}

// TestConcurrentIngestPipeline drives the whole staged pipeline from
// several directions at once: overlapping Ingest cycles, concurrent IK
// report publication, a push-mode handler, and a polling subscriber.
// Run with -race; the per-shard CEP locks and the trie-indexed broker
// must keep every layer consistent.
func TestConcurrentIngestPipeline(t *testing.T) {
	m := buildMiddleware(t)
	m.Broker().StartDispatch(4)
	defer m.Broker().StopDispatch()

	districts := []string{"mangaung", "xhariep", "lejweleputswa"}
	const perDistrict = 120
	start := time.Date(2015, 3, 1, 6, 0, 0, 0, time.UTC)
	for di, d := range districts {
		cloud := wsn.NewCloudStore()
		batch := make([]wsn.RawReading, perDistrict)
		for i := range batch {
			batch[i] = wsn.RawReading{
				NodeID: fmt.Sprintf("n%d-%d", di, i), Vendor: "libelium", District: d,
				PropertyName: "pluviometer", UnitName: "mm", Value: float64(i % 9),
				Time: start.Add(time.Duration(i) * time.Hour), Seq: uint32(i + 1), BatteryV: 4,
			}
		}
		cloud.Upload(batch)
		if err := m.Protocol().AddSource("cloud-"+d, cloud); err != nil {
			t.Fatal(err)
		}
	}

	var handled atomic.Int64
	if _, err := m.Broker().SubscribeHandler("obs/#", 1<<16, DropOldest, func(Message) {
		handled.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	pollSub, err := m.Broker().Subscribe("obs/#", 1<<16, DropOldest)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		fetched   atomic.Int64
		annotated atomic.Int64
	)
	// Overlapping ingest cycles, each pulling a slice of the backlog.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rep, err := m.Ingest(32)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Fetched == 0 {
					return
				}
				fetched.Add(int64(rep.Fetched))
				annotated.Add(int64(rep.Annotated))
			}
		}()
	}
	// Concurrent IK publication on the same shards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 20; i++ {
			_, err := m.PublishIKReports([]ik.Report{{
				Informant: fmt.Sprintf("elder-%d", i), Indicator: "moon-halo",
				District: districts[i%len(districts)],
				Time:     base.AddDate(0, 0, i), Strength: 0.7,
			}})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	m.Broker().DrainDispatch()

	total := int64(len(districts) * perDistrict)
	if fetched.Load() != total {
		t.Errorf("fetched %d, want %d", fetched.Load(), total)
	}
	if annotated.Load() != total {
		t.Errorf("annotated %d, want %d", annotated.Load(), total)
	}
	if got := handled.Load(); got != total {
		t.Errorf("push handler saw %d observations, want %d", got, total)
	}
	if got := int64(len(pollSub.Poll(0))); got != total {
		t.Errorf("poll subscriber saw %d observations, want %d", got, total)
	}
	if st := m.Broker().Stats(); st.Drops != 0 {
		t.Errorf("drops = %d with ample capacity", st.Drops)
	}
}
