package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestAckSubscriptionConcurrent exercises the at-least-once path under
// concurrent publishers and a concurrent fetch/ack/redeliver consumer —
// the shape a real SMS channel worker has. Run with -race.
func TestAckSubscriptionConcurrent(t *testing.T) {
	b := NewBroker()
	sub, err := b.SubscribeAck("load/#", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 4
		perWriter = 500
		totalMsgs = writers * perWriter
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := b.Publish(Message{Topic: fmt.Sprintf("load/%d", w), Payload: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Consumer: fetch batches, ack half, redeliver the rest, repeat.
	consumed := make(map[uint64]bool)
	var consumedMu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ds := sub.Fetch(64)
			if len(ds) == 0 {
				consumedMu.Lock()
				n := len(consumed)
				consumedMu.Unlock()
				if n >= totalMsgs {
					return
				}
				sub.Redeliver()
				continue
			}
			for i, d := range ds {
				if i%2 == 0 {
					if err := sub.Ack(d.Seq); err != nil {
						t.Error(err)
						return
					}
					consumedMu.Lock()
					consumed[d.Seq] = true
					consumedMu.Unlock()
				}
			}
			sub.Redeliver()
		}
	}()
	wg.Wait()
	<-done
	if len(consumed) != totalMsgs {
		t.Fatalf("consumed %d of %d", len(consumed), totalMsgs)
	}
	if sub.Dropped() != 0 {
		t.Errorf("dropped %d with ample capacity", sub.Dropped())
	}
}

// TestSegmentConcurrentQueryAndCEP runs SPARQL queries concurrently with
// CEP shard creation and service registration. Run with -race.
func TestSegmentConcurrentQueryAndCEP(t *testing.T) {
	m := buildMiddleware(t)
	seg := m.Segment()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := seg.Select(`
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?c WHERE { ?c rdfs:subClassOf dews:DroughtEvent . }`); err != nil {
					t.Error(err)
					return
				}
				if _, err := seg.CEPEngine(fmt.Sprintf("district-%d-%d", w, i%5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(seg.CEPKeys()) != 20 {
		t.Errorf("shards = %d, want 20", len(seg.CEPKeys()))
	}
}
