package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/eventlog"
)

func openLogT(t *testing.T, dir string) *eventlog.Log {
	t.Helper()
	l, err := eventlog.Open(eventlog.Config{Dir: dir})
	if err != nil {
		t.Fatalf("eventlog.Open: %v", err)
	}
	return l
}

func durableBroker(t *testing.T, dir string) (*Broker, *eventlog.Log, int) {
	t.Helper()
	l := openLogT(t, dir)
	b := NewBroker()
	n, err := b.AttachLog(l)
	if err != nil {
		t.Fatalf("AttachLog: %v", err)
	}
	return b, l, n
}

func publishSeq(t *testing.T, b *Broker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := b.Publish(Message{
			Topic:   fmt.Sprintf("obs/d%d/Rainfall", i%4),
			Time:    time.Date(2015, 3, 1, 0, 0, i, 0, time.UTC),
			Payload: map[string]any{"value": float64(i)},
		})
		if err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
}

func TestPublishAssignsMonotonicOffsets(t *testing.T) {
	b := NewBroker()
	sub, err := b.Subscribe("obs/#", 64, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	publishSeq(t, b, 5)
	msgs := sub.Poll(0)
	if len(msgs) != 5 {
		t.Fatalf("delivered %d, want 5", len(msgs))
	}
	for i, m := range msgs {
		if m.Offset != uint64(i+1) {
			t.Fatalf("message %d: offset %d, want %d", i, m.Offset, i+1)
		}
	}
	if b.NextOffset() != 6 {
		t.Fatalf("NextOffset %d, want 6", b.NextOffset())
	}
}

func TestWriteThroughAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	b, l, recovered := durableBroker(t, dir)
	if recovered != 0 {
		t.Fatalf("fresh log recovered %d records", recovered)
	}
	publishSeq(t, b, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	b2, l2, recovered := durableBroker(t, dir)
	defer l2.Close()
	if recovered != 12 {
		t.Fatalf("recovered %d records, want 12", recovered)
	}
	if b2.NextOffset() != 13 {
		t.Fatalf("recovered NextOffset %d, want 13", b2.NextOffset())
	}
	// Retained state matches: the latest message per topic survives the
	// restart (payloads come back as generic JSON values).
	for d := 0; d < 4; d++ {
		topic := fmt.Sprintf("obs/d%d/Rainfall", d)
		m, ok := b2.Retained(topic)
		if !ok {
			t.Fatalf("topic %s lost across restart", topic)
		}
		orig, _ := b.Retained(topic)
		if m.Offset != orig.Offset {
			t.Fatalf("topic %s: recovered offset %d, want %d", topic, m.Offset, orig.Offset)
		}
		got, _ := json.Marshal(m.Payload)
		want, _ := json.Marshal(orig.Payload)
		if string(got) != string(want) {
			t.Fatalf("topic %s: recovered payload %s, want %s", topic, got, want)
		}
	}
	// The offset sequence continues across the restart.
	if _, err := b2.Publish(Message{Topic: "obs/d0/Rainfall", Time: time.Now(), Payload: 1}); err != nil {
		t.Fatal(err)
	}
	if m, _ := b2.Retained("obs/d0/Rainfall"); m.Offset != 13 {
		t.Fatalf("post-restart publish got offset %d, want 13", m.Offset)
	}
}

// TestCrashRecoveryMatchesNeverCrashedRun is the torn-write acceptance
// test at the broker level: a crash that tears the last record mid-write
// must recover to exactly the state of a run that only ever saw the
// complete records.
func TestCrashRecoveryMatchesNeverCrashedRun(t *testing.T) {
	const total = 15 // record `total` is torn; 14 survive
	dir := t.TempDir()
	b, l, _ := durableBroker(t, dir)
	publishSeq(t, b, total)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-4); err != nil {
		t.Fatal(err)
	}

	// The reference: a broker that never crashed, fed the surviving
	// prefix through its own log.
	refDir := t.TempDir()
	ref, refLog, _ := durableBroker(t, refDir)
	defer refLog.Close()
	publishSeq(t, ref, total-1)

	crashed, l2, recovered := durableBroker(t, dir)
	defer l2.Close()
	if recovered != total-1 {
		t.Fatalf("recovered %d records, want %d", recovered, total-1)
	}
	if crashed.NextOffset() != ref.NextOffset() {
		t.Fatalf("NextOffset %d, want %d", crashed.NextOffset(), ref.NextOffset())
	}
	// Retained state must be identical.
	for d := 0; d < 4; d++ {
		topic := fmt.Sprintf("obs/d%d/Rainfall", d)
		got, gotOK := crashed.Retained(topic)
		want, wantOK := ref.Retained(topic)
		if gotOK != wantOK {
			t.Fatalf("topic %s: retained presence %v, want %v", topic, gotOK, wantOK)
		}
		if !wantOK {
			continue
		}
		if got.Offset != want.Offset || got.Topic != want.Topic || !got.Time.Equal(want.Time) {
			t.Fatalf("topic %s: recovered %+v, want %+v", topic, got, want)
		}
	}
	// Replayed history must be identical too (offsets, topics, payloads).
	collect := func(b *Broker) []Message {
		var out []Message
		if _, err := b.ReplayFrom(0, "#", func(m Message) error {
			out = append(out, m)
			return nil
		}); err != nil {
			t.Fatalf("ReplayFrom: %v", err)
		}
		return out
	}
	gotHist, wantHist := collect(crashed), collect(ref)
	if len(gotHist) != len(wantHist) {
		t.Fatalf("history length %d, want %d", len(gotHist), len(wantHist))
	}
	for i := range gotHist {
		g, w := gotHist[i], wantHist[i]
		if g.Offset != w.Offset || g.Topic != w.Topic || !g.Time.Equal(w.Time) ||
			!reflect.DeepEqual(g.Payload, w.Payload) {
			t.Fatalf("history[%d]: %+v, want %+v", i, g, w)
		}
	}
}

func TestReplayFromPatternAndCursor(t *testing.T) {
	dir := t.TempDir()
	b, l, _ := durableBroker(t, dir)
	defer l.Close()
	publishSeq(t, b, 8) // topics obs/d0..d3, offsets 1..8

	var got []uint64
	next, err := b.ReplayFrom(3, "obs/d1/#", func(m Message) error {
		got = append(got, m.Offset)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayFrom: %v", err)
	}
	// d1 messages are offsets 2 and 6; only 6 is >= 3.
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("replayed offsets %v, want [6]", got)
	}
	if next != b.NextOffset() {
		t.Fatalf("next cursor %d, want %d", next, b.NextOffset())
	}

	if _, err := b.ReplayFrom(0, "not//valid", func(Message) error { return nil }); err == nil {
		t.Fatal("bad pattern accepted")
	}
	memOnly := NewBroker()
	if _, err := memOnly.ReplayFrom(0, "#", func(Message) error { return nil }); err != ErrNoLog {
		t.Fatalf("in-memory ReplayFrom error %v, want ErrNoLog", err)
	}
}

func TestSubscribeLiveSkipsRetained(t *testing.T) {
	b := NewBroker()
	publishSeq(t, b, 4)
	live, err := b.SubscribeLive("obs/#", 16, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	if got := live.Poll(0); len(got) != 0 {
		t.Fatalf("SubscribeLive replayed %d retained messages", len(got))
	}
	publishSeq(t, b, 1)
	if got := live.Poll(0); len(got) != 1 || got[0].Offset != 5 {
		t.Fatalf("live delivery %v", got)
	}
	// And it participates in stats/unsubscribe like any subscription.
	if st := b.Stats(); st.Subscriptions != 1 {
		t.Fatalf("subscriptions %d, want 1", st.Subscriptions)
	}
	b.Unsubscribe(live)
	if st := b.Stats(); st.Subscriptions != 0 {
		t.Fatalf("subscriptions %d after unsubscribe", st.Subscriptions)
	}
}

func TestPublishBatchWriteThrough(t *testing.T) {
	dir := t.TempDir()
	b, l, _ := durableBroker(t, dir)
	msgs := make([]Message, 6)
	for i := range msgs {
		msgs[i] = Message{Topic: fmt.Sprintf("obs/d%d/NDVI", i%2), Time: time.Now(), Payload: i}
	}
	if _, err := b.PublishBatch(msgs); err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if msgs[i].Offset != uint64(i+1) {
			t.Fatalf("batch message %d: offset %d", i, msgs[i].Offset)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, l2, recovered := durableBroker(t, dir)
	defer l2.Close()
	if recovered != 6 {
		t.Fatalf("recovered %d batch records, want 6", recovered)
	}
}

// TestAttachLogRequiresFreshBroker: attaching after in-memory publishes
// would collide the broker's offset sequence with the log's — the
// broker must refuse instead of bricking every later publish.
func TestAttachLogRequiresFreshBroker(t *testing.T) {
	l := openLogT(t, t.TempDir())
	defer l.Close()
	b := NewBroker()
	publishSeq(t, b, 3)
	if _, err := b.AttachLog(l); err == nil {
		t.Fatal("AttachLog accepted a broker that already published")
	}
	// The broker keeps working in-memory, and the log stays clean for a
	// fresh broker.
	if _, err := b.Publish(Message{Topic: "obs/d0/Rainfall", Payload: 1}); err != nil {
		t.Fatalf("publish after refused attach: %v", err)
	}
	fresh := NewBroker()
	if _, err := fresh.AttachLog(l); err != nil {
		t.Fatalf("fresh broker attach: %v", err)
	}
	if fresh.NextOffset() != 1 {
		t.Fatalf("log gained records from the refused attach: next %d", fresh.NextOffset())
	}
}

// TestAttachLogConcurrentSubscribe: AttachLog rebuilds retained state
// from the WAL without holding subMu across the file I/O (regression:
// it used to, stalling every Subscribe for the whole recovery).
// Subscriptions churning during the replay must make progress, and the
// attach must still replay every record.
func TestAttachLogConcurrentSubscribe(t *testing.T) {
	dir := t.TempDir()
	const records = 4000
	l := openLogT(t, dir)
	for i := 0; i < records; i++ {
		if _, err := l.Append(eventlog.Record{
			Topic:   fmt.Sprintf("obs/d%d/Rainfall", i%8),
			Time:    time.Now(),
			Payload: []byte("1"),
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("closing seed log: %v", err)
	}

	l2 := openLogT(t, dir)
	defer l2.Close()
	b := NewBroker()
	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		churned := 0
		for {
			select {
			case <-stop:
				done <- churned
				return
			default:
			}
			sub, err := b.Subscribe("obs/#", 8, DropOldest)
			if err != nil {
				t.Errorf("subscribe during attach: %v", err)
				done <- churned
				return
			}
			b.Unsubscribe(sub)
			churned++
		}
	}()
	n, err := b.AttachLog(l2)
	close(stop)
	churned := <-done
	if err != nil {
		t.Fatalf("AttachLog with concurrent subscribers: %v", err)
	}
	if n != records {
		t.Fatalf("replayed %d records, want %d", n, records)
	}
	if churned == 0 {
		t.Log("no subscribe completed during the replay window (slow machine?) — liveness not exercised")
	}
}

// TestAttachLogConcurrentAttach: when two goroutines race to attach,
// the post-replay re-check must let exactly one win; the loser reports
// an error instead of silently overwriting the winner's log pointer.
func TestAttachLogConcurrentAttach(t *testing.T) {
	la := openLogT(t, t.TempDir())
	defer la.Close()
	lb := openLogT(t, t.TempDir())
	defer lb.Close()
	b := NewBroker()
	errs := make(chan error, 2)
	for _, l := range []*eventlog.Log{la, lb} {
		go func(l *eventlog.Log) {
			_, err := b.AttachLog(l)
			errs <- err
		}(l)
	}
	failed := 0
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("%d of 2 concurrent attaches failed, want exactly 1", failed)
	}
	if b.Log() == nil {
		t.Fatal("no log attached after the race")
	}
}
