package repro

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/dews"
	"repro/internal/forecast"
	"repro/internal/ik"
	"repro/internal/mediator"
	"repro/internal/ontology/drought"
	"repro/internal/rdf"
	"repro/internal/wsn"
)

// TestFullStackSmoke runs the complete system once and checks the
// headline invariants across module boundaries.
func TestFullStackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	system, err := dews.NewSystem(dews.Config{
		Seed: 99, Districts: []string{"mangaung", "xhariep"},
		Years: 5, TrainYears: 3, NodesPerDistrict: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Annotated == 0 || res.Inferences == 0 || res.EvaluatedDays == 0 {
		t.Fatalf("pipeline incomplete: %+v", res)
	}
	// The DVI map covers both districts after the run.
	render := system.DVIMap().Render()
	for _, d := range []string{"mangaung", "xhariep"} {
		if !strings.Contains(render, d) {
			t.Errorf("DVI map missing %s:\n%s", d, render)
		}
	}
	// The semantic-web channel can answer a SPARQL question about its
	// own bulletins.
	g := system.Web().Graph()
	if g.Len() == 0 {
		t.Fatal("semantic-web channel empty")
	}
}

// TestMiddlewareGarbageToleration injects malformed and unknown readings
// into the cloud and checks the middleware degrades gracefully: bad rows
// are counted, good rows still flow.
func TestMiddlewareGarbageToleration(t *testing.T) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	mw, err := core.New(core.Config{Ontology: onto})
	if err != nil {
		t.Fatal(err)
	}
	cloud := wsn.NewCloudStore()
	if err := mw.Protocol().AddSource("dirty", cloud); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC)
	cloud.Upload([]wsn.RawReading{
		// Good reading.
		{NodeID: "ok", Vendor: "libelium", District: "mangaung",
			PropertyName: "pluviometer", UnitName: "mm", Value: 3, Time: now, Seq: 1, BatteryV: 4},
		// Unknown property name.
		{NodeID: "bad1", Vendor: "acme", District: "mangaung",
			PropertyName: "zorkometer", UnitName: "zk", Value: 1, Time: now, Seq: 1, BatteryV: 4},
		// Known property, unknown unit.
		{NodeID: "bad2", Vendor: "libelium", District: "mangaung",
			PropertyName: "pluviometer", UnitName: "cubits", Value: 1, Time: now, Seq: 2, BatteryV: 4},
		// Another good one.
		{NodeID: "ok", Vendor: "libelium", District: "mangaung",
			PropertyName: "temperature", UnitName: "degC", Value: 24, Time: now, Seq: 3, BatteryV: 4},
	})
	rep, err := mw.Ingest(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fetched != 4 || rep.Annotated != 2 || rep.Failed != 2 {
		t.Fatalf("ingest report = %+v", rep)
	}
	failures := mw.Segment().Annotator().Failures()
	if failures["no-alignment"] != 1 || failures["no-unit-conversion"] != 1 {
		t.Errorf("failure histogram = %v", failures)
	}
}

// TestThresholdSweep is the EXP-C2 operating-point harness: it sweeps the
// fuzzy-match threshold and logs coverage vs precision over the vendor
// population, asserting the expected monotone trade-off.
func TestThresholdSweep(t *testing.T) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: each wire name's correct property by vendor channel
	// modality.
	want := make(map[string]rdf.IRI)
	modalityProp := map[wsn.Modality]rdf.IRI{
		wsn.ModalityRainfall:         drought.Rainfall,
		wsn.ModalitySoilMoisture:     drought.SoilMoisture,
		wsn.ModalityAirTemperature:   drought.AirTemperature,
		wsn.ModalityRelativeHumidity: drought.RelativeHumidity,
		wsn.ModalityWindSpeed:        drought.WindSpeed,
		wsn.ModalityWaterLevel:       drought.WaterLevel,
		wsn.ModalityNDVI:             drought.NDVI,
	}
	type probe struct{ vendor, name string }
	var probes []probe
	for _, v := range wsn.BuiltinVendors() {
		for m, ch := range v.Channels {
			probes = append(probes, probe{v.Name, ch.WireName})
			want[v.Name+"/"+ch.WireName] = modalityProp[m]
		}
	}
	var prevCoverage float64 = 2
	for _, threshold := range []float64{0.6, 0.7, 0.78, 0.85, 0.95} {
		reg := mediator.NewRegistry(onto)
		reg.Threshold = threshold
		matched, correct := 0, 0
		for _, p := range probes {
			a, err := reg.Resolve(p.vendor, p.name)
			if err != nil {
				continue
			}
			matched++
			if a.Property == want[p.vendor+"/"+p.name] {
				correct++
			}
		}
		coverage := float64(matched) / float64(len(probes))
		precision := 1.0
		if matched > 0 {
			precision = float64(correct) / float64(matched)
		}
		t.Logf("threshold %.2f: coverage %.2f precision %.2f", threshold, coverage, precision)
		if coverage > prevCoverage+1e-9 {
			t.Errorf("coverage must be non-increasing in threshold (%.2f → %.2f)", prevCoverage, coverage)
		}
		prevCoverage = coverage
	}
}

// TestObservationsToSPARQLAnswer checks the "what/where/when" query of
// the paper's framing: after ingest, a SPARQL query can ask which
// district's soil was observed driest.
func TestObservationsToSPARQLAnswer(t *testing.T) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	mw, err := core.New(core.Config{Ontology: onto, GraphObservations: true})
	if err != nil {
		t.Fatal(err)
	}
	cloud := wsn.NewCloudStore()
	if err := mw.Protocol().AddSource("c", cloud); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC)
	cloud.Upload([]wsn.RawReading{
		{NodeID: "a", Vendor: "libelium", District: "mangaung",
			PropertyName: "soil_moisture", UnitName: "frac", Value: 0.12, Time: now, Seq: 1, BatteryV: 4},
		{NodeID: "b", Vendor: "libelium", District: "xhariep",
			PropertyName: "soil_moisture", UnitName: "frac", Value: 0.31, Time: now, Seq: 1, BatteryV: 4},
	})
	if _, err := mw.Ingest(0); err != nil {
		t.Fatal(err)
	}
	sols, err := mw.Segment().Select(`
PREFIX ssn:  <http://dews.africrid.example/ontology/ssn#>
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?where ?v WHERE {
  ?obs ssn:observedProperty dews:SoilMoisture ;
       ssn:hasFeatureOfInterest ?where ;
       ssn:hasSimpleResult ?v .
} ORDER BY ?v LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Rows) != 1 {
		t.Fatalf("rows = %d", len(sols.Rows))
	}
	where := sols.Rows[0]["where"].(rdf.IRI)
	if where != drought.Mangaung {
		t.Errorf("driest district = %s, want Mangaung", where)
	}
}

// TestIKQuestionnaireThroughPipeline feeds questionnaire-format reports
// through the middleware and checks the CEP inference appears.
func TestIKQuestionnaireThroughPipeline(t *testing.T) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	ikRules, err := ik.CompileRules(ik.Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	mw, err := core.New(core.Config{Ontology: onto, Rules: ikRules})
	if err != nil {
		t.Fatal(err)
	}
	src := `
informant: mme-dikeledi; sign: sifennefene-worms; district: xhariep; date: 2015-08-01; strength: 0.9
informant: ntate-thabo;  sign: sifennefene-worms; district: xhariep; date: 2015-08-04; strength: 0.8
`
	reports, err := ik.ParseQuestionnaire(strings.NewReader(src), ik.CatalogueBySlug())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mw.Broker().Subscribe("event/xhariep/IKDrySignal", 16, core.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	inferences, err := mw.PublishIKReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	if inferences == 0 {
		t.Fatal("corroborated questionnaire reports should infer a dry signal")
	}
	if len(sub.Poll(0)) == 0 {
		t.Fatal("IKDrySignal not published")
	}
}

// TestBackpressureUnderBurst floods a slow subscriber and verifies the
// broker keeps functioning with honest drop accounting.
func TestBackpressureUnderBurst(t *testing.T) {
	b := core.NewBroker()
	slow, err := b.Subscribe("obs/#", 100, core.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.Subscribe("obs/#", 100000, core.DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 10000
	for i := 0; i < burst; i++ {
		if _, err := b.Publish(core.Message{Topic: fmt.Sprintf("obs/d%d/Rainfall", i%5), Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	if slow.Dropped() != burst-100 {
		t.Errorf("slow dropped %d, want %d", slow.Dropped(), burst-100)
	}
	if fast.Delivered() != burst {
		t.Errorf("fast delivered %d", fast.Delivered())
	}
	// The slow subscriber kept the most recent messages.
	msgs := slow.Poll(0)
	if msgs[len(msgs)-1].Payload != burst-1 {
		t.Error("slow subscriber should hold the newest messages")
	}
}

// TestCEPOutOfOrderFromLossyUplink checks the realistic failure mode:
// retransmitted (late) readings are rejected by the shard but do not
// poison subsequent processing.
func TestCEPOutOfOrderFromLossyUplink(t *testing.T) {
	rules := cep.MustParseRules(`
RULE r WHEN COUNT(Rainfall) >= 1 WITHIN 5d EMIT Seen
`)
	eng, err := cep.NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := eng.Process(cep.Event{Type: "Rainfall", Time: t0.AddDate(0, 0, 2), Value: 1, Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	// Late retransmission arrives.
	if _, err := eng.Process(cep.Event{Type: "Rainfall", Time: t0, Value: 1, Confidence: 1}); err == nil {
		t.Fatal("late event should be rejected")
	}
	// Stream continues normally afterwards.
	if _, err := eng.Process(cep.Event{Type: "Rainfall", Time: t0.AddDate(0, 0, 3), Value: 1, Confidence: 1}); err != nil {
		t.Fatalf("engine poisoned by late event: %v", err)
	}
}

// TestForecastThresholdOperatingCurve sweeps the decision threshold on a
// recorded run and checks the POD/FAR trade-off is monotone.
func TestForecastThresholdOperatingCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := dews.Config{
		Seed: 13, Districts: []string{"mangaung"},
		Years: 6, TrainYears: 3, NodesPerDistrict: 3, RecordIssues: true,
	}
	system, err := dews.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run()
	if err != nil {
		t.Fatal(err)
	}
	fused := forecast.Fused{
		Sensor: res.CalibratedSensor,
		IK:     forecast.IKOnly{BaseRate: res.TrainBase},
	}
	prevPOD := 2.0
	for _, cut := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		v := dews.Evaluate("fused", fused, res.Issues, cut, 30)
		pod := v.Contingency.POD()
		t.Logf("cut %.2f: POD %.3f FAR %.3f CSI %.3f", cut, pod, v.Contingency.FAR(), v.Contingency.CSI())
		if pod > prevPOD+1e-9 {
			t.Errorf("POD must fall as the threshold rises (%.3f → %.3f)", prevPOD, pod)
		}
		prevPOD = pod
	}
}
