// Command wsngen generates synthetic heterogeneous sensor traces: it runs
// the climate generator and a WSN fleet for a period and emits the raw
// vendor-formatted readings (exactly what lands in the cloud store) as
// CSV or as the annotated unified observations in Turtle.
//
// Usage:
//
//	wsngen -days 90 -nodes 10 -seed 7                 # raw CSV to stdout
//	wsngen -days 30 -format turtle                    # mediated RDF
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/climate"
	"repro/internal/mediator"
	"repro/internal/ontology/drought"
	"repro/internal/rdf"
	"repro/internal/wsn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wsngen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wsngen", flag.ContinueOnError)
	var (
		days   = fs.Int("days", 90, "days to simulate")
		nodes  = fs.Int("nodes", 10, "fleet size")
		seed   = fs.Int64("seed", 7, "seed")
		format = fs.String("format", "csv", "output: csv | turtle")
		loss   = fs.Float64("loss", 0.1, "radio loss rate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	gen, err := climate.NewGenerator(climate.DefaultParams(*seed))
	if err != nil {
		return err
	}
	cloud := wsn.NewCloudStore()
	link := wsn.NewLink(wsn.LinkConfig{LossRate: *loss, CorruptRate: 0.02, MaxRetries: 3, Seed: *seed + 1})
	gw := wsn.NewGateway(link, cloud)
	fleet, err := wsn.NewFleet(*nodes, []string{"mangaung", "xhariep", "lejweleputswa"}, *seed+2)
	if err != nil {
		return err
	}
	for _, n := range fleet.Nodes {
		gw.Register(n)
	}
	for _, day := range gen.GenerateDays(*days) {
		for _, n := range fleet.Nodes {
			if rs := n.Sample(day); len(rs) > 0 {
				if err := gw.Ingest(rs); err != nil {
					return err
				}
			}
		}
	}
	raw, _, err := cloud.Download(0, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wsngen: %d readings survived the uplink (%d frames dropped)\n",
		len(raw), gw.Dropped)

	switch *format {
	case "csv":
		fmt.Fprintln(out, "time,node,vendor,district,property,unit,value,seq,battery_v")
		for _, r := range raw {
			fmt.Fprintf(out, "%s,%s,%s,%s,%s,%s,%.4f,%d,%.2f\n",
				r.Time.Format("2006-01-02T15:04:05Z"), r.NodeID, r.Vendor, r.District,
				r.PropertyName, r.UnitName, r.Value, r.Seq, r.BatteryV)
		}
		return nil
	case "turtle", "ttl":
		onto, _, err := drought.BuildMaterialized()
		if err != nil {
			return err
		}
		ann := mediator.NewAnnotator(onto)
		mediator.SeedAlignments(ann.Registry())
		g := rdf.NewGraph()
		if _, err := ann.ToGraph(raw, g); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wsngen: annotated %d, failures %v\n", ann.Annotated(), ann.Failures())
		return rdf.WriteTurtle(out, g, nil)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
