package main

import (
	"bytes"
	"testing"
)

// TestSameSeedByteIdentical is the determinism regression for the
// whole generation pipeline: climate generator, fleet sampling, lossy
// uplink and output rendering must all be pure functions of -seed, so
// two same-seed runs emit byte-identical streams. A single stray
// time.Now() or global-rand call anywhere in the pipeline breaks this.
func TestSameSeedByteIdentical(t *testing.T) {
	for _, format := range []string{"csv", "turtle"} {
		args := []string{"-days", "10", "-nodes", "4", "-seed", "99", "-format", format}
		var a, b bytes.Buffer
		if err := run(args, &a); err != nil {
			t.Fatalf("%s run 1: %v", format, err)
		}
		if err := run(args, &b); err != nil {
			t.Fatalf("%s run 2: %v", format, err)
		}
		if a.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: same-seed runs diverged (%d vs %d bytes)", format, a.Len(), b.Len())
		}
	}
}

// TestSeedChangesOutput: the seed must actually steer generation.
func TestSeedChangesOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-days", "10", "-nodes", "4", "-seed", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-days", "10", "-nodes", "4", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("different seeds produced identical traces")
	}
}
