// Command ikctl works with indigenous-knowledge field data: it validates
// questionnaire files (the paper's §5 collection instrument), lists the
// indicator catalogue, and compiles the catalogue into the CEP rules the
// middleware runs.
//
// Usage:
//
//	ikctl catalogue                 # list the built-in indicator catalogue
//	ikctl validate reports.txt      # check a questionnaire file
//	ikctl rules                     # print the compiled CEP rule set
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/ik"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ikctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ikctl catalogue | validate <file> | rules")
	}
	switch args[0] {
	case "catalogue":
		return printCatalogue(out)
	case "validate":
		if len(args) != 2 {
			return fmt.Errorf("usage: ikctl validate <file>")
		}
		return validate(args[1], out)
	case "rules":
		return printRules(out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func printCatalogue(out io.Writer) error {
	fmt.Fprintf(out, "%-24s %-5s %-6s %-5s %s\n", "slug", "dir", "lead", "rel", "label")
	for _, ind := range ik.Catalogue() {
		fmt.Fprintf(out, "%-24s %-5s %4dd %5.2f  %s\n",
			ind.Slug, ind.Polarity, ind.LeadTimeDays, ind.BaseReliability, ind.Label)
	}
	return nil
}

func validate(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	reports, err := ik.ParseQuestionnaire(f, ik.CatalogueBySlug())
	if err != nil {
		return err
	}
	byIndicator := make(map[string]int)
	informants := make(map[string]bool)
	for _, r := range reports {
		byIndicator[r.Indicator]++
		informants[r.Informant] = true
	}
	fmt.Fprintf(out, "valid: %d reports from %d informants\n", len(reports), len(informants))
	for _, ind := range ik.Catalogue() {
		if n := byIndicator[ind.Slug]; n > 0 {
			fmt.Fprintf(out, "  %-24s %d\n", ind.Slug, n)
		}
	}
	return nil
}

func printRules(out io.Writer) error {
	rules, err := ik.CompileRules(ik.Catalogue())
	if err != nil {
		return err
	}
	for _, r := range rules {
		fmt.Fprintln(out, r.String())
		fmt.Fprintln(out)
	}
	return nil
}
