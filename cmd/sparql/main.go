// Command sparql queries RDF documents or the built-in unified ontology
// library with the middleware's SPARQL subset.
//
// Usage:
//
//	sparql -library 'SELECT ?c WHERE { ?c rdfs:subClassOf dews:DroughtEvent . }'
//	sparql -in obs.ttl 'ASK { ?s a ssn:Observation . }'
//	sparql -library -reason 'SELECT ?x WHERE { ?x dews:leadsTo dews:AgriculturalDrought . }'
//
// The default prefixes (rdf, rdfs, owl, xsd, dolce, ssn, dews, ik, geo,
// obs) are pre-bound; PREFIX declarations may override them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ontology"
	"repro/internal/ontology/drought"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sparql:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sparql", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "Turtle file to query (default: stdin unless -library)")
		library = fs.Bool("library", false, "query the built-in unified ontology library")
		reason  = fs.Bool("reason", false, "materialize entailments before querying")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one query argument")
	}
	query := fs.Arg(0)

	var g *rdf.Graph
	switch {
	case *library:
		g = drought.Build().Graph()
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = rdf.ParseTurtle(f)
		if err != nil {
			return err
		}
	default:
		var err error
		g, err = rdf.ParseTurtle(os.Stdin)
		if err != nil {
			return err
		}
	}

	if *reason {
		o := ontology.FromGraph(g, rdf.IRI("urn:sparql:input"))
		if _, err := (ontology.Reasoner{}).Materialize(o); err != nil {
			return err
		}
	}

	res, err := sparql.NewEngine(g).Query(query)
	if err != nil {
		return err
	}
	switch res := res.(type) {
	case *sparql.Solutions:
		fmt.Fprint(out, res.String())
		fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
	case bool:
		fmt.Fprintln(out, res)
	case *rdf.Graph:
		return rdf.WriteTurtle(out, res, nil)
	}
	return nil
}
