// Command rdfpipe converts and validates RDF documents, and can dump the
// built-in unified ontology library.
//
// Usage:
//
//	rdfpipe -in data.ttl -from turtle -to ntriples        # convert
//	rdfpipe -in data.nt  -from ntriples -validate         # just validate
//	rdfpipe -library -to turtle                           # dump the ontology
//	rdfpipe -library -stats                               # library statistics
//	rdfpipe -in big.nt -to snapshot -out 0.gsnap          # offline bulk load
//	rdfpipe -in 0.gsnap -from snapshot -to turtle         # dump a snapshot
//
// The snapshot format is the persistent triple store's binary
// run-snapshot (internal/graphlog): -to snapshot bulk-loads a document
// into a file a store can open directly, and -from snapshot dumps one
// back to a text serialization without starting a store.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/graphlog"
	"repro/internal/ontology"
	"repro/internal/ontology/drought"
	"repro/internal/rdf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdfpipe:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rdfpipe", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input file (default stdin)")
		from     = fs.String("from", "turtle", "input format: turtle | ntriples | snapshot")
		to       = fs.String("to", "ntriples", "output format: turtle | ntriples | snapshot")
		outFile  = fs.String("out", "", "output file for -to snapshot (the binary format is not written to stdout)")
		library  = fs.Bool("library", false, "use the built-in unified ontology library as input")
		validate = fs.Bool("validate", false, "parse and report statistics only")
		stats    = fs.Bool("stats", false, "print ontology statistics (implies -validate)")
		reason   = fs.Bool("reason", false, "materialize RDFS/OWL entailments before output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *rdf.Graph
	switch {
	case *library:
		g = drought.Build().Graph()
	case *from == "snapshot" || *from == "gsnap":
		if *in == "" {
			return fmt.Errorf("-from snapshot needs -in FILE (the binary format is not read from stdin)")
		}
		var info graphlog.SnapshotInfo
		var err error
		g, info, err = graphlog.ReadSnapshotFile(*in)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: %d triples, %d terms, WAL offset %d\n",
			info.Triples, info.Terms, info.WALOffset)
	default:
		r := io.Reader(os.Stdin)
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		var err error
		switch *from {
		case "turtle", "ttl":
			g, err = rdf.ParseTurtle(r)
		case "ntriples", "nt":
			g, err = rdf.ParseNTriples(r)
		default:
			return fmt.Errorf("unknown input format %q", *from)
		}
		if err != nil {
			return err
		}
	}

	if *reason {
		o := ontology.FromGraph(g, rdf.IRI("urn:rdfpipe:input"))
		res, err := ontology.Reasoner{}.Materialize(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "reasoner: +%d triples in %d rounds\n", res.Added, res.Rounds)
	}

	if *stats {
		o := ontology.FromGraph(g, rdf.IRI("urn:rdfpipe:input"))
		fmt.Fprintln(out, o.Stats())
		return nil
	}
	if *validate {
		fmt.Fprintf(out, "valid: %d triples\n", g.Len())
		return nil
	}

	switch *to {
	case "turtle", "ttl":
		return rdf.WriteTurtle(out, g, nil)
	case "ntriples", "nt":
		return rdf.WriteNTriples(out, g)
	case "snapshot", "gsnap":
		if *outFile == "" {
			return fmt.Errorf("-to snapshot needs -out FILE (the binary format is not written to stdout)")
		}
		// WAL offset 1 marks the snapshot as covering nothing beyond the
		// start of an (empty or fresh) WAL, so a store directory seeded
		// with this file opens directly to the bulk-loaded graph.
		if err := graphlog.WriteSnapshotFile(*outFile, g.Snapshot(), 1, g.BlankNodeSeq()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: wrote %d triples to %s\n", g.Len(), *outFile)
		return nil
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
}
