// Command dewsload is the closed-loop load and chaos harness for the
// DEWS gateway: wsngen-style synthetic sensor publishers, a mixed SSE
// subscriber fleet (live, wildcard, Last-Event-ID resumers), and a
// SPARQL query stream, all driven against the real HTTP stack, with
// end-to-end latency measured through embedded publish timestamps.
//
// Modes:
//
//	-mode steady   sustained load for -duration; report throughput and
//	               p50/p99/p999 publish-ack and publish→SSE latencies
//	-mode chaos    same load with -kills SIGKILLs of the server process
//	               at randomized points, each followed by a restart;
//	               afterwards the recovery oracles must hold: no lost
//	               acked publish, exactly-once delivery per stream,
//	               contiguous replay, graph-triple parity with the log
//	-mode smoke    a bounded steady segment plus one chaos cycle with
//	               small presets — the CI configuration
//
// Unless -target points at an external server, dewsload re-execs
// itself (-as-server) as a child process owning the durable stores, so
// a SIGKILL is a real process death, not a simulated one. The report
// is written as machine-readable JSON (-out, default BENCH_load.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/loadgen/oracle"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dewsload:", err)
		os.Exit(1)
	}
}

type options struct {
	mode         string
	addr         string
	target       string
	duration     time.Duration
	rate         float64
	publishers   int
	batch        int
	subscribers  int
	wildcardFrac float64
	resumerFrac  float64
	sparql       int
	bulletinEach int
	seed         int64
	kills        int
	out          string
	dir          string
	keep         bool
	pr           int
	note         string

	asServer bool
	logDir   string
	graphDir string
}

func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("dewsload", flag.ContinueOnError)
	fs.StringVar(&o.mode, "mode", "steady", "steady | chaos | smoke | full (steady then chaos at the configured scale)")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:9177", "address the harness server listens on")
	fs.StringVar(&o.target, "target", "", "drive an external gateway base URL instead of spawning one (disables chaos)")
	fs.DurationVar(&o.duration, "duration", 60*time.Second, "load phase length")
	fs.Float64Var(&o.rate, "rate", 1000, "target publish rate, events/sec across all publishers (0 = unpaced)")
	fs.IntVar(&o.publishers, "publishers", 8, "closed-loop publisher count")
	fs.IntVar(&o.batch, "batch", 50, "events per publish request")
	fs.IntVar(&o.subscribers, "subscribers", 1000, "SSE subscriber fleet size")
	fs.Float64Var(&o.wildcardFrac, "wildcard-frac", 0.25, "fraction of subscribers on wildcard patterns")
	fs.Float64Var(&o.resumerFrac, "resumer-frac", 0.15, "fraction of subscribers that drop and resume with Last-Event-ID")
	fs.IntVar(&o.sparql, "sparql", 4, "concurrent SPARQL query workers")
	fs.IntVar(&o.bulletinEach, "bulletin-every", 50, "emit a bulletin every n-th event per publisher (0 = never)")
	fs.Int64Var(&o.seed, "seed", 1, "run seed: event streams, fleet patterns and kill points all derive from it")
	fs.IntVar(&o.kills, "kills", 1, "chaos mode: SIGKILL+restart cycles")
	fs.StringVar(&o.out, "out", "BENCH_load.json", "report path")
	fs.StringVar(&o.dir, "dir", "", "data directory (default: a temp dir, removed unless -keep)")
	fs.BoolVar(&o.keep, "keep", false, "keep the data directory")
	fs.IntVar(&o.pr, "pr", 0, "PR number stamped into the report")
	fs.StringVar(&o.note, "note", "", "free-form note stamped into the report")
	fs.BoolVar(&o.asServer, "as-server", false, "internal: run the harness server child")
	fs.StringVar(&o.logDir, "log-dir", "", "as-server: event log directory")
	fs.StringVar(&o.graphDir, "graph-dir", "", "as-server: graph store directory")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.asServer {
		return serveChild(o)
	}
	switch o.mode {
	case "steady", "chaos", "smoke", "full":
	default:
		return fmt.Errorf("unknown -mode %q", o.mode)
	}
	if o.mode == "smoke" {
		// CI preset: bounded and race-detector friendly. One steady
		// segment plus one chaos cycle, small fleet.
		o.duration = 8 * time.Second
		o.rate = 400
		o.publishers = 4
		o.batch = 25
		o.subscribers = 150
		o.sparql = 2
		o.bulletinEach = 25
		o.kills = 1
	}
	if o.target != "" && o.mode != "steady" {
		return fmt.Errorf("-target supports -mode steady only (chaos needs to own the server process)")
	}
	return orchestrate(o)
}

// serveChild is the re-exec'd server process: the durable stack behind
// one HTTP listener, shut down cleanly on SIGTERM (SIGKILL is the
// point of chaos mode and needs no handler).
func serveChild(o *options) error {
	if o.logDir == "" || o.graphDir == "" {
		return fmt.Errorf("-as-server needs -log-dir and -graph-dir")
	}
	s, err := loadgen.NewServer(loadgen.ServerConfig{LogDir: o.logDir, GraphDir: o.graphDir})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: o.addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case <-sigc:
	}
	// Drain order matters: goodbyes end the SSE streams, which lets the
	// HTTP server's Shutdown return, then the stores flush and close.
	_ = s.GW.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	return s.Close()
}

// child manages the spawned server process.
type child struct {
	cmd     *exec.Cmd
	opts    *options
	stopped bool
}

func spawnServer(o *options) (*child, error) {
	cmd := exec.Command(os.Args[0],
		"-as-server",
		"-addr", o.addr,
		"-log-dir", o.logDir,
		"-graph-dir", o.graphDir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawning server: %w", err)
	}
	return &child{cmd: cmd, opts: o}, nil
}

// kill delivers SIGKILL — the crash under test — and reaps the corpse.
func (c *child) kill() error {
	if err := c.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = c.cmd.Wait()
	return nil
}

// stop asks for a clean shutdown and waits for it. Idempotent: the
// chaos path stops the child itself before the offline oracles run,
// and withServer's final stop must then be a no-op.
func (c *child) stop() error {
	if c.stopped {
		return nil
	}
	c.stopped = true
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		_ = c.cmd.Process.Kill()
		return fmt.Errorf("server did not stop within 30s of SIGTERM")
	}
}

// Report is the BENCH_load.json shape. tools/benchguard gates the
// steady throughput and latency fields; keep them stable.
type Report struct {
	Schema    string         `json:"schema"`
	PR        int            `json:"pr,omitempty"`
	Note      string         `json:"note,omitempty"`
	Generated string         `json:"generated"`
	Mode      string         `json:"mode"`
	Seed      int64          `json:"seed"`
	Config    map[string]any `json:"config"`
	Steady    *PhaseReport   `json:"steady,omitempty"`
	Chaos     *ChaosReport   `json:"chaos,omitempty"`
	Passed    bool           `json:"passed"`
}

// PhaseReport is one measured load phase.
type PhaseReport struct {
	loadgen.LoadResult
	SubscriberCount int                        `json:"subscriber_count"`
	Subscribers     []loadgen.SubscriberReport `json:"subscribers"`
	Replay          *loadgen.ReplayFacts       `json:"replay,omitempty"`
}

// ChaosReport is the kill-cycle phase plus its recovery oracles.
type ChaosReport struct {
	Kills                 int                        `json:"kills"`
	RestartMillis         []int64                    `json:"restart_millis"`
	Load                  loadgen.LoadResult         `json:"load"`
	SubscriberCount       int                        `json:"subscriber_count"`
	Subscribers           []loadgen.SubscriberReport `json:"subscribers"`
	ExactlyOnceViolations int                        `json:"exactly_once_violations"`
	// OffsetRegressions counts deliveries at non-advancing offsets.
	// After a crash loses unsynced tail records their offsets are
	// legitimately reissued to new events, so this is informational —
	// identity-based ExactlyOnceViolations is the correctness oracle.
	OffsetRegressions uint64                  `json:"offset_regressions"`
	Replay            *loadgen.ReplayFacts    `json:"replay"`
	Log               *oracle.LogFacts        `json:"log"`
	Durability        oracle.DurabilityReport `json:"durability"`
	Graph             *oracle.GraphReport     `json:"graph"`
	Passed            bool                    `json:"passed"`
	Failures          []string                `json:"failures,omitempty"`
}

func orchestrate(o *options) error {
	report := &Report{
		Schema:    "dewsload/v1",
		PR:        o.pr,
		Note:      o.note,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Mode:      o.mode,
		Seed:      o.seed,
		Config: map[string]any{
			"duration_secs":  o.duration.Seconds(),
			"rate_eps":       o.rate,
			"publishers":     o.publishers,
			"batch":          o.batch,
			"subscribers":    o.subscribers,
			"wildcard_frac":  o.wildcardFrac,
			"resumer_frac":   o.resumerFrac,
			"sparql":         o.sparql,
			"bulletin_every": o.bulletinEach,
			"kills":          o.kills,
		},
		Passed: true,
	}

	if o.dir == "" {
		dir, err := os.MkdirTemp("", "dewsload-*")
		if err != nil {
			return err
		}
		o.dir = dir
		if !o.keep {
			defer os.RemoveAll(dir)
		}
	} else if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}
	o.logDir = filepath.Join(o.dir, "eventlog")
	o.graphDir = filepath.Join(o.dir, "graph")

	switch o.mode {
	case "steady":
		if err := runSteady(o, report); err != nil {
			return err
		}
	case "chaos":
		if err := runChaos(o, report); err != nil {
			return err
		}
	case "smoke", "full":
		if err := runSteady(o, report); err != nil {
			return err
		}
		// Fresh dirs for the chaos cycle so its oracles audit only what
		// the chaos segment wrote.
		o.logDir = filepath.Join(o.dir, "eventlog-chaos")
		o.graphDir = filepath.Join(o.dir, "graph-chaos")
		if err := runChaos(o, report); err != nil {
			return err
		}
	}

	if err := writeReport(o.out, report); err != nil {
		return err
	}
	fmt.Printf("report: %s\n", o.out)
	if !report.Passed {
		return fmt.Errorf("oracles failed — see %s", o.out)
	}
	return nil
}

func (o *options) runConfig(sync, track bool) loadgen.RunConfig {
	return loadgen.RunConfig{
		Target:        o.target,
		Seed:          o.seed,
		Publishers:    o.publishers,
		Rate:          o.rate,
		Batch:         o.batch,
		Subscribers:   o.subscribers,
		WildcardFrac:  o.wildcardFrac,
		ResumerFrac:   o.resumerFrac,
		SPARQLClients: o.sparql,
		BulletinEvery: o.bulletinEach,
		SyncPublish:   sync,
		TrackIDs:      track,
	}
}

// withServer spawns the child server (unless -target), waits for
// health, runs fn, and cleanly stops the child afterwards.
func withServer(o *options, fn func(base string, c *child) error) error {
	base := o.target
	var c *child
	if base == "" {
		if err := os.MkdirAll(o.logDir, 0o755); err != nil {
			return err
		}
		if err := os.MkdirAll(o.graphDir, 0o755); err != nil {
			return err
		}
		var err error
		c, err = spawnServer(o)
		if err != nil {
			return err
		}
		base = "http://" + o.addr
		if err := loadgen.WaitHealthy(context.Background(), http.DefaultClient, base, 30*time.Second); err != nil {
			_ = c.kill()
			return err
		}
	}
	err := fn(base, c)
	if c != nil {
		if stopErr := c.stop(); stopErr != nil && err == nil {
			err = stopErr
		}
	}
	return err
}

func runSteady(o *options, report *Report) error {
	fmt.Fprintf(os.Stderr, "== steady: %d subscribers, %d publishers, %.0f events/s for %v\n",
		o.subscribers, o.publishers, o.rate, o.duration)
	return withServer(o, func(base string, _ *child) error {
		cfg := o.runConfig(false, false)
		cfg.Target = base
		r := loadgen.NewRunner(cfg)
		ctx := context.Background()
		if err := r.StartSubscribers(ctx); err != nil {
			return err
		}
		res := r.RunLoad(ctx, o.duration)
		phase := &PhaseReport{LoadResult: *res, SubscriberCount: o.subscribers}

		// Replay audit: the whole log back through one firehose stream.
		st, err := loadgen.FetchStats(ctx, http.DefaultClient, base)
		if err != nil {
			return err
		}
		if st.NextOffset > 1 {
			facts, err := loadgen.VerifyReplay(ctx, http.DefaultClient, base, st.NextOffset-1, 5*time.Minute)
			if err != nil {
				return fmt.Errorf("verification replay: %w", err)
			}
			phase.Replay = facts
			if !facts.Contiguous || facts.Duplicated > 0 {
				report.Passed = false
			}
		}
		r.StopSubscribers()
		// Per-stream offset regressions are reported but not gated:
		// live queue-backed streams reorder when concurrent publishers'
		// fan-outs interleave. Duplication is judged by the replay id
		// audit above (and, in chaos mode, identity tracking).
		phase.Subscribers = r.SubscriberReports()
		report.Steady = phase
		fmt.Fprintf(os.Stderr, "   %.0f events/s published, %.0f events/s delivered, e2e p99 %s\n",
			res.ThroughputEPS, res.DeliveredEPS, fmtP99(phase.Subscribers))
		return nil
	})
}

func fmtP99(subs []loadgen.SubscriberReport) string {
	var h float64
	for _, s := range subs {
		if s.E2E.P99Ms > h {
			h = s.E2E.P99Ms
		}
	}
	return fmt.Sprintf("%.1fms", h)
}

func runChaos(o *options, report *Report) error {
	fmt.Fprintf(os.Stderr, "== chaos: %d kill cycle(s) under load for %v\n", o.kills, o.duration)
	return withServer(o, func(base string, c *child) error {
		if c == nil {
			return fmt.Errorf("chaos needs to own the server process")
		}
		cfg := o.runConfig(true, true)
		cfg.Target = base
		r := loadgen.NewRunner(cfg)
		ctx := context.Background()
		if err := r.StartSubscribers(ctx); err != nil {
			return err
		}

		// Kill points derive from the seed: spread across the load
		// window with ±25% jitter, never in the final fifth (recovery
		// needs runway).
		rng := rand.New(rand.NewSource(o.seed + 777))
		killAt := make([]time.Duration, o.kills)
		slot := o.duration * 4 / 5 / time.Duration(o.kills+1)
		for i := range killAt {
			jitter := time.Duration((rng.Float64() - 0.5) * float64(slot) / 2)
			killAt[i] = slot*time.Duration(i+1) + jitter
		}

		chaos := &ChaosReport{Kills: o.kills, Passed: true}
		start := time.Now()
		controllerDone := make(chan error, 1)
		go func() {
			for _, at := range killAt {
				if wait := time.Until(start.Add(at)); wait > 0 {
					time.Sleep(wait)
				}
				fmt.Fprintf(os.Stderr, "   SIGKILL at t=%v\n", time.Since(start).Round(time.Millisecond))
				if err := c.kill(); err != nil {
					controllerDone <- err
					return
				}
				restartStart := time.Now()
				nc, err := spawnServer(o)
				if err != nil {
					controllerDone <- err
					return
				}
				*c = *nc
				if err := loadgen.WaitHealthy(context.Background(), http.DefaultClient, base, 30*time.Second); err != nil {
					controllerDone <- err
					return
				}
				chaos.RestartMillis = append(chaos.RestartMillis, time.Since(restartStart).Milliseconds())
				fmt.Fprintf(os.Stderr, "   recovered in %dms\n", chaos.RestartMillis[len(chaos.RestartMillis)-1])
			}
			controllerDone <- nil
		}()

		res := r.RunLoad(ctx, o.duration)
		if err := <-controllerDone; err != nil {
			return fmt.Errorf("chaos controller: %w", err)
		}
		chaos.Load = *res
		chaos.SubscriberCount = o.subscribers

		// Online oracle: replay the whole recovered log through SSE.
		st, err := loadgen.FetchStats(ctx, http.DefaultClient, base)
		if err != nil {
			return err
		}
		if st.NextOffset > 1 {
			facts, err := loadgen.VerifyReplay(ctx, http.DefaultClient, base, st.NextOffset-1, 5*time.Minute)
			if err != nil {
				return fmt.Errorf("verification replay: %w", err)
			}
			chaos.Replay = facts
		}
		r.StopSubscribers()
		chaos.Subscribers = r.SubscriberReports()
		chaos.ExactlyOnceViolations = r.ExactlyOnceViolations()
		for _, s := range chaos.Subscribers {
			chaos.OffsetRegressions += s.OffsetRegressions
		}

		// The offline oracles need the directories quiescent.
		if err := c.stop(); err != nil {
			return err
		}
		logFacts, err := oracle.ScanLog(o.logDir)
		if err != nil {
			return err
		}
		chaos.Log = logFacts
		chaos.Durability = oracle.CheckDurability(logFacts, r.Acked.Acked(), r.Acked.Uncertain())
		graph, err := oracle.CheckGraph(o.graphDir, logFacts)
		if err != nil {
			return err
		}
		chaos.Graph = graph

		fail := func(f string, args ...any) {
			chaos.Passed = false
			chaos.Failures = append(chaos.Failures, fmt.Sprintf(f, args...))
		}
		if !logFacts.Contiguous {
			fail("recovered log is not contiguous")
		}
		if !chaos.Durability.OK() {
			fail("durability: %d acked lost, %d acked duplicated, %d uncertain duplicated",
				chaos.Durability.AckedMissing, chaos.Durability.AckedDuplicated, chaos.Durability.UncertainDuplicated)
		}
		if chaos.ExactlyOnceViolations > 0 {
			fail("%d per-stream exactly-once violations", chaos.ExactlyOnceViolations)
		}
		if chaos.Replay != nil && (!chaos.Replay.Contiguous || chaos.Replay.Duplicated > 0) {
			fail("verification replay: contiguous=%v duplicated=%d", chaos.Replay.Contiguous, chaos.Replay.Duplicated)
		}
		if !graph.Parity {
			fail("graph parity: %d triples / %d typed nodes, want %d / %d",
				graph.Triples, graph.BulletinNodes, graph.WantTriples, logFacts.Bulletins)
		}
		if !chaos.Passed {
			report.Passed = false
		}
		report.Chaos = chaos
		fmt.Fprintf(os.Stderr, "   chaos oracles: passed=%v (acked=%d lost=%d, graph parity=%v)\n",
			chaos.Passed, chaos.Durability.Acked, chaos.Durability.AckedMissing, graph.Parity)
		return nil
	})
}

func writeReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
