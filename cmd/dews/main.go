// Command dews runs the full IoT-based drought early warning simulation:
// climate → heterogeneous WSN → semantic middleware (mediation, ontology,
// CEP, IK fusion) → forecast verification → dissemination. It prints the
// EXP-C1 skill table, pipeline accounting, and sample bulletins, and can
// optionally keep serving afterwards: -serve mounts the streaming
// subscription gateway (SSE /subscribe, /publish, /v1/queue ack queues,
// /stats, /healthz — see API.md) together with the semantic-web channel
// (/semweb/*, plus legacy /bulletins /sparql /health).
//
// Usage:
//
//	dews [-seed N] [-years N] [-train N] [-lead N] [-districts a,b,c]
//	     [-nodes N] [-fetch-parallel N] [-gateway-buffer N] [-serve :8080]
//	     [-log-dir DIR] [-log-segment-bytes N] [-log-retain 720h]
//	     [-graph-dir DIR] [-graph-checkpoint 15s] [-graph-checkpoint-frac 0.25]
//	     [-pprof] [-pprof-mutex N] [-pprof-block N]
//
// With -log-dir the broker writes every published message through a
// durable segmented event log: restarts recover retained topics and the
// offset sequence, and SSE subscribers resume by offset (Last-Event-ID
// or ?from=).
//
// With -graph-dir the semantic-web bulletin graph is durable too: every
// bulletin's triples are committed through a graph write-ahead log and
// periodically checkpointed into binary snapshot files, so a restart
// reopens the full RDF graph (snapshot load + WAL tail replay) instead
// of starting empty.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/dews"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dews:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dews", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 2015, "simulation seed")
		years      = fs.Int("years", 12, "total simulated years")
		train      = fs.Int("train", 6, "training years (climatology + calibration)")
		lead       = fs.Int("lead", 30, "forecast lead time in days")
		districts  = fs.String("districts", "", "comma-separated district slugs (default: all five)")
		nodes      = fs.Int("nodes", 4, "sensor nodes per district")
		fetchPar   = fs.Int("fetch-parallel", 0, "concurrent cloud-source downloads per ingest (0 = layer default, 1 = serial)")
		gwBuffer   = fs.Int("gateway-buffer", 0, "default per-client SSE buffer of the subscription gateway (0 = gateway default)")
		logDir     = fs.String("log-dir", "", "durable event log directory (empty = in-memory broker only)")
		logSeg     = fs.Int64("log-segment-bytes", 0, "event log segment rotation size in bytes (0 = default 8MiB)")
		logRetain  = fs.Duration("log-retain", 0, "drop sealed log segments older than this (0 = keep forever)")
		graphDir   = fs.String("graph-dir", "", "durable semantic-web graph directory (empty = in-memory graph only)")
		graphCkpt  = fs.Duration("graph-checkpoint", 0, "graph snapshot/WAL-truncation cadence (0 = default 15s, negative = disable)")
		graphFrac  = fs.Float64("graph-checkpoint-frac", 0, "checkpoint once the WAL tail exceeds this fraction of the graph (0 = default 0.25)")
		serve      = fs.String("serve", "", "serve the subscription gateway and semantic-web channel on this address after the run")
		pprofOn    = fs.Bool("pprof", false, "with -serve, also mount net/http/pprof profiling under /debug/pprof/")
		mutexFrac  = fs.Int("pprof-mutex", 0, "sample 1/N of mutex contention events for /debug/pprof/mutex (0 = off)")
		blockNanos = fs.Int("pprof-block", 0, "sample blocking events lasting >= N ns for /debug/pprof/block (0 = off)")
		ablation   = fs.Bool("ablation", false, "run the fusion ablation study instead of the standard table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Contention profiling is opt-in and set before any broker work so
	// the whole run is sampled, not just the serving phase. The profiles
	// are read through -pprof's /debug/pprof/{mutex,block} endpoints.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockNanos > 0 {
		runtime.SetBlockProfileRate(*blockNanos)
	}

	cfg := dews.Config{
		Seed:             *seed,
		Years:            *years,
		TrainYears:       *train,
		LeadDays:         *lead,
		NodesPerDistrict: *nodes,
		FetchParallelism: *fetchPar,
		GatewayBuffer:    *gwBuffer,
		LogDir:           *logDir,
		LogSegmentBytes:  *logSeg,
		LogRetain:        *logRetain,

		GraphDir:                *graphDir,
		GraphCheckpointInterval: *graphCkpt,
		GraphCheckpointFraction: *graphFrac,
	}
	if *districts != "" {
		cfg.Districts = strings.Split(*districts, ",")
	}

	if *ablation {
		rows, res, err := dews.RunFusionAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("ablation over %d recorded issues (base rate %.2f):\n\n", len(res.Issues), res.DroughtFraction)
		fmt.Print(dews.FormatAblationTable(rows))
		return nil
	}

	started := time.Now()
	system, err := dews.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer system.Close()
	fmt.Printf("DEWS simulation: seed=%d years=%d train=%d lead=%dd districts=%v\n",
		*seed, *years, *train, *lead, cfg.Districts)
	if *logDir != "" {
		fmt.Printf("event log: %s (recovered %d records from previous runs)\n",
			*logDir, system.Recovered())
	}
	if *graphDir != "" {
		gs := system.GraphStore().Stats()
		fmt.Printf("graph store: %s (recovered %d triples: snapshot %d + %d replayed)\n",
			*graphDir, gs.Triples, gs.Triples-gs.ReplayedTriples, gs.ReplayedTriples)
	}
	result, err := system.Run()
	if err != nil {
		return err
	}
	fmt.Printf("run completed in %v\n\n", time.Since(started).Round(time.Millisecond))

	fmt.Println("— pipeline accounting —")
	fmt.Printf("readings fetched   %d\n", result.Fetched)
	fmt.Printf("annotated          %d (%.1f%%)\n", result.Annotated,
		pct(result.Annotated, result.Fetched))
	fmt.Printf("mediation failures %d\n", result.Failed)
	fmt.Printf("CEP inferences     %d\n", result.Inferences)
	fmt.Printf("bulletins          %d\n\n", len(result.Bulletins))

	fmt.Println("— forecast verification (EXP-C1) —")
	fmt.Print(dews.FormatSkillTable(result))
	fmt.Println()

	fmt.Println("— dissemination —")
	st := result.Hub
	fmt.Printf("bulletins received by hub: %d\n", st.Received)
	for _, ch := range []string{"billboard", "sms", "ip-radio", "semantic-web"} {
		fmt.Printf("  %-13s delivered=%-5d filtered=%-5d errors=%d\n",
			ch, st.Delivered[ch], st.Filtered[ch], st.Errors[ch])
	}
	fmt.Println()

	fmt.Println("— current billboard —")
	fmt.Print(system.Billboard().Display())
	fmt.Println()
	fmt.Println("— spatial DVI distribution —")
	fmt.Print(system.DVIMap().Render())

	if *serve != "" {
		mux, gw, err := system.ServeMux()
		if err != nil {
			return err
		}
		if *pprofOn {
			// Off by default: profiling endpoints expose goroutine stacks
			// and heap contents, so an operator opts in per process.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("\npprof profiling mounted at /debug/pprof/\n")
		}
		fmt.Printf("\nserving on %s — gateway: /subscribe /publish /v1/queue /stats /healthz; semantic web: /semweb/* (also /bulletins /sparql /health)\n", *serve)
		server := &http.Server{
			Addr:              *serve,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		errCh := make(chan error, 1)
		go func() { errCh <- server.ListenAndServe() }()
		select {
		case err := <-errCh:
			return err
		case <-ctx.Done():
			// Ctrl-C: say goodbye to SSE clients, then close the listener.
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = gw.Shutdown(shutCtx)
			return server.Shutdown(shutCtx)
		}
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
